//! The B+-tree proper: lookups, range scans, and top-down inserts.

use std::io;
use std::sync::Arc;

use promips_storage::{PageId, Pager};

use crate::iter::RangeIter;
use crate::node::{node_capacity, Node, NodeView};

/// A disk B+-tree rooted at a known page of a [`Pager`].
///
/// The tree does not own the pager: several trees (e.g. QALSH's per-hash
/// tables) can share one page file, and data pages can interleave with index
/// pages as iDistance's sequential layout requires.
pub struct BTree {
    pager: Arc<Pager>,
    root: PageId,
    height: u32,
    len: u64,
}

impl BTree {
    /// Creates an empty tree (a single empty leaf) in `pager`.
    pub fn create(pager: Arc<Pager>) -> io::Result<Self> {
        let root = pager.append(Node::empty_leaf().encode(pager.page_size()))?;
        Ok(Self {
            pager,
            root,
            height: 1,
            len: 0,
        })
    }

    /// Reconstructs a handle from a persisted root (see [`BTree::root`],
    /// [`BTree::height`], [`BTree::len`] for what to persist).
    pub fn open(pager: Arc<Pager>, root: PageId, height: u32, len: u64) -> Self {
        Self {
            pager,
            root,
            height,
            len,
        }
    }

    /// Builds a tree from `(key, value)` pairs **sorted by key** using
    /// bottom-up bulk loading (see [`crate::bulk`]).
    pub fn bulk_load(
        pager: Arc<Pager>,
        sorted: impl IntoIterator<Item = (u64, u64)>,
    ) -> io::Result<Self> {
        crate::bulk::bulk_load(pager, sorted)
    }

    /// Root page id (persist this to reopen the tree).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Tree height in levels (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pager backing this tree.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    fn read_node(&self, id: PageId) -> io::Result<Node> {
        Ok(Node::decode(self.pager.read(id)?.as_slice()))
    }

    /// Descends to the leaf where a scan for `key` must start.
    ///
    /// Uses the strict `separator < key` rule so that duplicate runs that
    /// straddle a split boundary are never skipped (the scan then walks the
    /// leaf chain forward). Internal nodes are read through the borrowed
    /// [`NodeView`] — the whole read path down to the leaf allocates
    /// nothing.
    fn descend_for_scan(&self, key: u64) -> io::Result<PageId> {
        let mut id = self.root;
        loop {
            let page = self.pager.read(id)?;
            let view = NodeView::parse(page.as_slice())?;
            if view.is_leaf() {
                return Ok(id);
            }
            // Last separator strictly below `key`, else the leftmost child.
            let idx = view.lower_bound(key);
            id = if idx == 0 {
                view.link()
            } else {
                view.entry(idx - 1).1
            };
        }
    }

    /// Returns the first value stored under `key`, if any.
    pub fn get(&self, key: u64) -> io::Result<Option<u64>> {
        let mut iter = self.range(key, key)?;
        match iter.next() {
            Some(res) => res.map(|(_, v)| Some(v)),
            None => Ok(None),
        }
    }

    /// Returns every value stored under `key`.
    pub fn get_all(&self, key: u64) -> io::Result<Vec<u64>> {
        self.range(key, key)?.map(|r| r.map(|(_, v)| v)).collect()
    }

    /// Iterates `(key, value)` pairs with `lo <= key <= hi` in key order.
    pub fn range(&self, lo: u64, hi: u64) -> io::Result<RangeIter> {
        let leaf = self.descend_for_scan(lo)?;
        RangeIter::new(Arc::clone(&self.pager), leaf, lo, hi)
    }

    /// Iterates all entries in key order.
    pub fn scan_all(&self) -> io::Result<RangeIter> {
        self.range(0, u64::MAX)
    }

    /// Inserts a `(key, value)` pair (duplicates allowed).
    pub fn insert(&mut self, key: u64, value: u64) -> io::Result<()> {
        if let Some((sep, right)) = self.insert_rec(self.root, key, value)? {
            // Root split: grow the tree by one level.
            let new_root = Node::Internal {
                leftmost: self.root,
                entries: vec![(sep, right)],
            };
            self.root = self.pager.append(new_root.encode(self.pager.page_size()))?;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new_right_page))` when
    /// the child split.
    fn insert_rec(
        &mut self,
        id: PageId,
        key: u64,
        value: u64,
    ) -> io::Result<Option<(u64, PageId)>> {
        let page_size = self.pager.page_size();
        let cap = node_capacity(page_size);
        match self.read_node(id)? {
            Node::Leaf { mut entries, next } => {
                // Insert after any existing duplicates to keep insertion
                // order stable among equal keys.
                let pos = entries.partition_point(|&(k, _)| k <= key);
                entries.insert(pos, (key, value));
                if entries.len() <= cap {
                    self.pager
                        .write(id, Node::Leaf { entries, next }.encode(page_size))?;
                    return Ok(None);
                }
                // Split: right half moves to a fresh page.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0;
                let right_page = self.pager.append(
                    Node::Leaf {
                        entries: right_entries,
                        next,
                    }
                    .encode(page_size),
                )?;
                self.pager.write(
                    id,
                    Node::Leaf {
                        entries,
                        next: right_page,
                    }
                    .encode(page_size),
                )?;
                Ok(Some((sep, right_page)))
            }
            Node::Internal {
                leftmost,
                mut entries,
            } => {
                let idx = entries.partition_point(|&(sep, _)| sep <= key);
                let child = if idx == 0 {
                    leftmost
                } else {
                    entries[idx - 1].1
                };
                let Some((sep, right)) = self.insert_rec(child, key, value)? else {
                    return Ok(None);
                };
                entries.insert(idx, (sep, right));
                if entries.len() <= cap {
                    self.pager
                        .write(id, Node::Internal { leftmost, entries }.encode(page_size))?;
                    return Ok(None);
                }
                // Split the internal node: middle separator moves up.
                let mid = entries.len() / 2;
                let mut right_entries = entries.split_off(mid);
                let (up_sep, right_leftmost) = right_entries.remove(0);
                let right_page = self.pager.append(
                    Node::Internal {
                        leftmost: right_leftmost,
                        entries: right_entries,
                    }
                    .encode(page_size),
                )?;
                self.pager
                    .write(id, Node::Internal { leftmost, entries }.encode(page_size))?;
                Ok(Some((up_sep, right_page)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tree() -> BTree {
        // 64-byte pages → capacity 3 per node → lots of splits.
        let pager = Arc::new(Pager::in_memory(64, 1024));
        BTree::create(pager).unwrap()
    }

    #[test]
    fn empty_tree_lookups() {
        let t = tiny_tree();
        assert!(t.is_empty());
        assert_eq!(t.get(5).unwrap(), None);
        assert_eq!(t.scan_all().unwrap().count(), 0);
    }

    #[test]
    fn insert_and_get_sequential() {
        let mut t = tiny_tree();
        for k in 0..200u64 {
            t.insert(k, k * 10).unwrap();
        }
        assert_eq!(t.len(), 200);
        assert!(t.height() > 1, "splits must have happened");
        for k in 0..200u64 {
            assert_eq!(t.get(k).unwrap(), Some(k * 10), "key {k}");
        }
        assert_eq!(t.get(200).unwrap(), None);
    }

    #[test]
    fn insert_reverse_order() {
        let mut t = tiny_tree();
        for k in (0..150u64).rev() {
            t.insert(k, k + 1).unwrap();
        }
        let collected: Vec<(u64, u64)> = t.scan_all().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(collected.len(), 150);
        assert!(collected.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(collected[0], (0, 1));
        assert_eq!(collected[149], (149, 150));
    }

    #[test]
    fn duplicates_are_all_returned() {
        let mut t = tiny_tree();
        // Interleave duplicates with other keys to force straddling splits.
        for i in 0..30u64 {
            t.insert(42, 1000 + i).unwrap();
            t.insert(i, i).unwrap();
        }
        let dups = t.get_all(42).unwrap();
        assert_eq!(dups.len(), 30, "{dups:?}");
        let mut sorted = dups.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1000..1030).collect::<Vec<u64>>());
    }

    #[test]
    fn range_scan_bounds_inclusive() {
        let mut t = tiny_tree();
        for k in (0..100u64).map(|k| k * 2) {
            t.insert(k, k).unwrap();
        }
        let got: Vec<u64> = t.range(10, 20).unwrap().map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18, 20]);
        // Bounds not present in the tree.
        let got: Vec<u64> = t.range(11, 19).unwrap().map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![12, 14, 16, 18]);
        // Empty range.
        assert_eq!(t.range(21, 21).unwrap().count(), 0);
    }

    #[test]
    fn traversal_costs_page_reads() {
        let pager = Arc::new(Pager::in_memory(4096, 1024));
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..10_000u64 {
            t.insert(k, k).unwrap();
        }
        pager.stats().reset();
        let _ = t.get(5000).unwrap();
        let reads = pager.stats().snapshot().logical_reads;
        assert!(reads >= t.height() as u64, "reads={reads}");
        assert!(reads <= t.height() as u64 + 2, "reads={reads}");
    }

    #[test]
    fn reopen_from_persisted_root() {
        let pager = Arc::new(Pager::in_memory(128, 64));
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..500u64 {
            t.insert(k, k * 3).unwrap();
        }
        let (root, height, len) = (t.root(), t.height(), t.len());
        drop(t);
        let t2 = BTree::open(pager, root, height, len);
        assert_eq!(t2.get(321).unwrap(), Some(963));
        assert_eq!(t2.len(), 500);
    }
}
