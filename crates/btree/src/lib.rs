//! A page-based disk B+-tree.
//!
//! ProMIPS's pitch (Section I of the paper) is that one B+-tree — via the
//! iDistance scheme — replaces the "heavyweight" structures of LSH-based
//! competitors (hundreds of hash tables). This crate is that single tree.
//! It is also reused by the H2-ALSH baseline, whose QALSH substrate keeps
//! one B+-tree per hash function over real-valued hash keys (mapped to
//! ordered `u64`s by [`codec::f64_to_key`]).
//!
//! Characteristics:
//! * keys are `u64`, values are `u64`, duplicate keys allowed;
//! * nodes are exactly one storage page; fan-out derives from the page size;
//! * all reads go through a [`promips_storage::Pager`], so tree traversals
//!   are charged to the paper's Page Access metric;
//! * bottom-up bulk loading for index construction, plus standard top-down
//!   inserts with node splits for incremental maintenance;
//! * forward range scans over leaf chaining.

pub mod bulk;
pub mod codec;
pub mod iter;
pub mod node;
pub mod tree;

pub use codec::{f64_to_key, key_to_f64};
pub use iter::RangeIter;
pub use node::{Node, NodeView, NIL_PAGE};
pub use tree::BTree;
