//! Bottom-up bulk loading.
//!
//! Index construction in ProMIPS knows all keys in advance (ring keys of all
//! points, sorted during the layout phase), so the tree is built a level at
//! a time with full pages and no splits — this is a large part of why the
//! paper's pre-processing time (Fig. 4b) beats the hash-table baselines.

use std::io;
use std::sync::Arc;

use promips_storage::Pager;

use crate::node::{node_capacity, Node, NIL_PAGE};
use crate::tree::BTree;

/// Leaf fill factor. Slightly under-filling leaves leaves room for a few
/// incremental inserts without immediate splits.
const FILL: f64 = 0.9;

/// Builds a [`BTree`] from key-sorted `(key, value)` pairs.
///
/// # Panics
/// Panics if the input is not sorted by key (checked while streaming).
pub fn bulk_load(
    pager: Arc<Pager>,
    sorted: impl IntoIterator<Item = (u64, u64)>,
) -> io::Result<BTree> {
    let page_size = pager.page_size();
    let cap = node_capacity(page_size);
    let per_leaf = ((cap as f64 * FILL) as usize).clamp(1, cap);

    // --- Level 0: write leaves, chaining `next` pointers. ---------------
    // Leaves are written as soon as they fill, but each leaf needs its
    // successor's page id; we allocate the next page id eagerly instead of
    // buffering whole levels in memory.
    let mut leaves: Vec<(u64, u64)> = Vec::new(); // (first_key, page_id)
    let mut pending: Vec<(u64, u64)> = Vec::with_capacity(per_leaf);
    let mut pending_page = pager.allocate()?;
    let mut total: u64 = 0;
    let mut last_key: Option<u64> = None;

    for (k, v) in sorted {
        if let Some(prev) = last_key {
            assert!(prev <= k, "bulk_load input not sorted: {prev} then {k}");
        }
        last_key = Some(k);
        total += 1;
        pending.push((k, v));
        if pending.len() == per_leaf {
            let next_page = pager.allocate()?;
            let first_key = pending[0].0;
            let node = Node::Leaf {
                entries: std::mem::take(&mut pending),
                next: next_page,
            };
            pager.write(pending_page, node.encode(page_size))?;
            leaves.push((first_key, pending_page));
            pending_page = next_page;
        }
    }
    // Final leaf (possibly empty if the input size is a multiple of
    // per_leaf, or the input was empty — an empty tree is a single leaf).
    let first_key = pending.first().map(|e| e.0).unwrap_or(0);
    let node = Node::Leaf {
        entries: std::mem::take(&mut pending),
        next: NIL_PAGE,
    };
    pager.write(pending_page, node.encode(page_size))?;
    if leaves.is_empty() || node_has_entries(total, per_leaf) {
        leaves.push((first_key, pending_page));
    } else {
        // The trailing empty leaf still terminates the chain; point the
        // previous leaf at NIL instead to avoid an empty hop.
        // (Cheapest fix: rewrite the previous leaf's next pointer.)
        let &(prev_first, prev_page) = leaves.last().unwrap();
        let prev = pager.read(prev_page)?;
        if let Node::Leaf { entries, .. } = Node::decode(prev.as_slice()) {
            pager.write(
                prev_page,
                Node::Leaf {
                    entries,
                    next: NIL_PAGE,
                }
                .encode(page_size),
            )?;
        }
        let _ = prev_first;
    }

    // --- Upper levels. ---------------------------------------------------
    let mut level = leaves;
    let mut height = 1u32;
    while level.len() > 1 {
        let mut next_level: Vec<(u64, u64)> = Vec::new();
        // Each internal node takes up to cap+1 children.
        for chunk in level.chunks(cap + 1) {
            let leftmost = chunk[0].1;
            let first_key = chunk[0].0;
            let entries: Vec<(u64, u64)> = chunk[1..].iter().map(|&(k, p)| (k, p)).collect();
            let page = pager.append(Node::Internal { leftmost, entries }.encode(page_size))?;
            next_level.push((first_key, page));
        }
        level = next_level;
        height += 1;
    }

    let root = level[0].1;
    Ok(BTree::open(pager, root, height, total))
}

/// Whether the final pending leaf actually received entries.
fn node_has_entries(total: u64, per_leaf: usize) -> bool {
    total == 0 || !total.is_multiple_of(per_leaf as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_storage::Pager;

    fn check_tree(n: u64, page_size: usize) {
        let pager = Arc::new(Pager::in_memory(page_size, 4096));
        let pairs = (0..n).map(|k| (k * 2, k));
        let tree = bulk_load(pager, pairs).unwrap();
        assert_eq!(tree.len(), n);
        // Every key resolvable.
        for k in (0..n).step_by((n as usize / 17).max(1)) {
            assert_eq!(tree.get(k * 2).unwrap(), Some(k), "n={n}, key={}", k * 2);
        }
        // Full scan is sorted and complete.
        let all: Vec<(u64, u64)> = tree.scan_all().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        // Odd keys are absent.
        if n > 0 {
            assert_eq!(tree.get(1).unwrap(), None);
        }
    }

    #[test]
    fn bulk_load_various_sizes() {
        for &n in &[0u64, 1, 2, 3, 10, 100, 1000, 5000] {
            check_tree(n, 64);
        }
        check_tree(10_000, 4096);
    }

    #[test]
    fn bulk_load_exact_multiple_of_leaf_capacity() {
        // per_leaf for 64-byte pages = floor(3 * 0.9) = 2.
        for &n in &[2u64, 4, 8, 64] {
            check_tree(n, 64);
        }
    }

    #[test]
    fn bulk_load_with_duplicates() {
        let pager = Arc::new(Pager::in_memory(64, 4096));
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        for i in 0..50u64 {
            pairs.push((7, i)); // 50 duplicates of key 7
        }
        pairs.push((9, 999));
        let tree = bulk_load(pager, pairs).unwrap();
        assert_eq!(tree.get_all(7).unwrap().len(), 50);
        assert_eq!(tree.get(9).unwrap(), Some(999));
        assert_eq!(tree.get(8).unwrap(), None);
    }

    #[test]
    #[should_panic]
    fn bulk_load_rejects_unsorted() {
        let pager = Arc::new(Pager::in_memory(64, 4096));
        let _ = bulk_load(pager, vec![(5, 0), (3, 0)]);
    }

    #[test]
    fn bulk_then_incremental_insert() {
        let pager = Arc::new(Pager::in_memory(128, 4096));
        let mut tree = bulk_load(pager, (0..1000u64).map(|k| (k * 10, k))).unwrap();
        for k in 0..100u64 {
            tree.insert(k * 10 + 5, k).unwrap();
        }
        assert_eq!(tree.len(), 1100);
        assert_eq!(tree.get(25).unwrap(), Some(2));
        assert_eq!(tree.get(20).unwrap(), Some(2));
        let all = tree.scan_all().unwrap().count();
        assert_eq!(all, 1100);
    }
}
