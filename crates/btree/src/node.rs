//! On-page node layout and (de)serialization.
//!
//! Every node occupies exactly one page:
//!
//! ```text
//! offset 0   u8   tag            1 = leaf, 2 = internal
//! offset 2   u16  count          number of entries
//! offset 8   u64  link           leaf: next-leaf page id (NIL if last)
//!                                internal: leftmost child page id
//! offset 16  [entry; count]      16-byte entries, key-sorted
//!             entry = (key: u64, val: u64)
//!                                leaf: val is the stored value
//!                                internal: val is the child page id holding
//!                                keys >= key (relative to the previous
//!                                separator)
//! ```
//!
//! All integers are little-endian. The decoded form is an owned struct; the
//! tree performs copy-on-write: read page → decode → mutate → encode → write.

use promips_storage::{PageBuf, PageId};

/// Sentinel for "no page" (last leaf's next pointer).
pub const NIL_PAGE: PageId = u64::MAX;

const HEADER_LEN: usize = 16;
const ENTRY_LEN: usize = 16;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// Maximum number of entries a node can hold for the given page size.
#[inline]
pub fn node_capacity(page_size: usize) -> usize {
    let cap = (page_size - HEADER_LEN) / ENTRY_LEN;
    assert!(
        cap >= 3,
        "page size {page_size} too small for a B+-tree node"
    );
    cap
}

/// A decoded node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf: sorted `(key, value)` pairs plus the next-leaf link.
    Leaf {
        /// Sorted entries; duplicates permitted.
        entries: Vec<(u64, u64)>,
        /// Page id of the next leaf in key order, or [`NIL_PAGE`].
        next: PageId,
    },
    /// Internal: leftmost child plus sorted `(separator, child)` pairs.
    Internal {
        /// Child for keys below the first separator.
        leftmost: PageId,
        /// Sorted separators with their right-hand children.
        entries: Vec<(u64, PageId)>,
    },
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
            next: NIL_PAGE,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { entries, .. } => entries.len(),
        }
    }

    /// True when the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Serializes into a fresh page buffer of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if the node exceeds [`node_capacity`].
    pub fn encode(&self, page_size: usize) -> PageBuf {
        let cap = node_capacity(page_size);
        assert!(self.len() <= cap, "node overflow: {} > {cap}", self.len());
        let mut page = PageBuf::zeroed(page_size);
        let buf = page.as_mut_slice();
        match self {
            Node::Leaf { entries, next } => {
                buf[0] = TAG_LEAF;
                buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                buf[8..16].copy_from_slice(&next.to_le_bytes());
                for (i, &(k, v)) in entries.iter().enumerate() {
                    let off = HEADER_LEN + i * ENTRY_LEN;
                    buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                }
            }
            Node::Internal { leftmost, entries } => {
                buf[0] = TAG_INTERNAL;
                buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                buf[8..16].copy_from_slice(&leftmost.to_le_bytes());
                for (i, &(k, c)) in entries.iter().enumerate() {
                    let off = HEADER_LEN + i * ENTRY_LEN;
                    buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&c.to_le_bytes());
                }
            }
        }
        page
    }

    /// Decodes a node from page bytes.
    ///
    /// # Panics
    /// Panics on an unknown tag byte (corrupt page).
    pub fn decode(bytes: &[u8]) -> Node {
        let tag = bytes[0];
        let count = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        let link = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = HEADER_LEN + i * ENTRY_LEN;
            let k = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let v = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            entries.push((k, v));
        }
        match tag {
            TAG_LEAF => Node::Leaf {
                entries,
                next: link,
            },
            TAG_INTERNAL => Node::Internal {
                leftmost: link,
                entries,
            },
            other => panic!("corrupt B+-tree page: unknown tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_for_standard_pages() {
        assert_eq!(node_capacity(4096), 255);
        assert_eq!(node_capacity(65536), 4095);
        assert_eq!(node_capacity(64), 3);
    }

    #[test]
    #[should_panic]
    fn capacity_rejects_tiny_pages() {
        node_capacity(32);
    }

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: vec![(1, 10), (5, 50), (5, 51), (9, 90)],
            next: 77,
        };
        let page = node.encode(4096);
        assert_eq!(Node::decode(page.as_slice()), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            leftmost: 3,
            entries: vec![(100, 4), (200, 5)],
        };
        let page = node.encode(4096);
        assert_eq!(Node::decode(page.as_slice()), node);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node = Node::empty_leaf();
        let page = node.encode(256);
        let decoded = Node::decode(page.as_slice());
        assert_eq!(decoded, node);
        assert!(decoded.is_empty());
        assert!(decoded.is_leaf());
    }

    #[test]
    fn full_node_roundtrip() {
        let cap = node_capacity(256);
        let entries: Vec<(u64, u64)> = (0..cap as u64).map(|i| (i * 3, i)).collect();
        let node = Node::Leaf {
            entries,
            next: NIL_PAGE,
        };
        let page = node.encode(256);
        assert_eq!(Node::decode(page.as_slice()), node);
    }

    #[test]
    #[should_panic]
    fn encode_rejects_overflow() {
        let cap = node_capacity(64);
        let entries: Vec<(u64, u64)> = (0..=cap as u64).map(|i| (i, i)).collect();
        Node::Leaf {
            entries,
            next: NIL_PAGE,
        }
        .encode(64);
    }
}
