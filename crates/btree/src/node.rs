//! On-page node layout and (de)serialization.
//!
//! Every node occupies exactly one page:
//!
//! ```text
//! offset 0   u8   tag            1 = leaf, 2 = internal
//! offset 2   u16  count          number of entries
//! offset 8   u64  link           leaf: next-leaf page id (NIL if last)
//!                                internal: leftmost child page id
//! offset 16  [entry; count]      16-byte entries, key-sorted
//!             entry = (key: u64, val: u64)
//!                                leaf: val is the stored value
//!                                internal: val is the child page id holding
//!                                keys >= key (relative to the previous
//!                                separator)
//! ```
//!
//! All integers are little-endian. The decoded form is an owned struct; the
//! tree performs copy-on-write: read page → decode → mutate → encode → write.

use std::io;

use promips_storage::{PageBuf, PageId};

/// Sentinel for "no page" (last leaf's next pointer).
pub const NIL_PAGE: PageId = u64::MAX;

const HEADER_LEN: usize = 16;
const ENTRY_LEN: usize = 16;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// Maximum number of entries a node can hold for the given page size.
#[inline]
pub fn node_capacity(page_size: usize) -> usize {
    let cap = (page_size - HEADER_LEN) / ENTRY_LEN;
    assert!(
        cap >= 3,
        "page size {page_size} too small for a B+-tree node"
    );
    cap
}

/// A decoded node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf: sorted `(key, value)` pairs plus the next-leaf link.
    Leaf {
        /// Sorted entries; duplicates permitted.
        entries: Vec<(u64, u64)>,
        /// Page id of the next leaf in key order, or [`NIL_PAGE`].
        next: PageId,
    },
    /// Internal: leftmost child plus sorted `(separator, child)` pairs.
    Internal {
        /// Child for keys below the first separator.
        leftmost: PageId,
        /// Sorted separators with their right-hand children.
        entries: Vec<(u64, PageId)>,
    },
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
            next: NIL_PAGE,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { entries, .. } => entries.len(),
        }
    }

    /// True when the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Serializes into a fresh page buffer of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if the node exceeds [`node_capacity`].
    pub fn encode(&self, page_size: usize) -> PageBuf {
        let cap = node_capacity(page_size);
        assert!(self.len() <= cap, "node overflow: {} > {cap}", self.len());
        let mut page = PageBuf::zeroed(page_size);
        let buf = page.as_mut_slice();
        match self {
            Node::Leaf { entries, next } => {
                buf[0] = TAG_LEAF;
                buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                buf[8..16].copy_from_slice(&next.to_le_bytes());
                for (i, &(k, v)) in entries.iter().enumerate() {
                    let off = HEADER_LEN + i * ENTRY_LEN;
                    buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                }
            }
            Node::Internal { leftmost, entries } => {
                buf[0] = TAG_INTERNAL;
                buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                buf[8..16].copy_from_slice(&leftmost.to_le_bytes());
                for (i, &(k, c)) in entries.iter().enumerate() {
                    let off = HEADER_LEN + i * ENTRY_LEN;
                    buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&c.to_le_bytes());
                }
            }
        }
        page
    }

    /// Decodes a node from page bytes.
    ///
    /// # Panics
    /// Panics on an unknown tag byte (corrupt page).
    pub fn decode(bytes: &[u8]) -> Node {
        let tag = bytes[0];
        let count = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        let link = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = HEADER_LEN + i * ENTRY_LEN;
            let k = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let v = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            entries.push((k, v));
        }
        match tag {
            TAG_LEAF => Node::Leaf {
                entries,
                next: link,
            },
            TAG_INTERNAL => Node::Internal {
                leftmost: link,
                entries,
            },
            other => panic!("corrupt B+-tree page: unknown tag {other}"),
        }
    }
}

/// Reads entry `i` of an encoded node straight from page bytes, without
/// re-validating the header. Crate-internal fast path for the leaf-chain
/// iterator, which validates each page once (via [`NodeView::parse`]) when
/// it loads it and then reads entries one at a time.
#[inline]
pub(crate) fn entry_at(bytes: &[u8], i: usize) -> (u64, u64) {
    let off = HEADER_LEN + i * ENTRY_LEN;
    (
        u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()),
        u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap()),
    )
}

/// A borrowed, page-backed view of an encoded node.
///
/// [`Node::decode`] materializes an owned `Vec` of entries — the right
/// shape for copy-on-write *mutation*, but a heap allocation per node on
/// the read path. `NodeView` borrows the page bytes instead: the header is
/// parsed on construction, entries are decoded lazily straight from the
/// page, and nothing is allocated. The B+-tree descend and the leaf-chain
/// range scan (the whole projected-range-search read path) ride this view,
/// which is what makes a warm annulus scan allocation-free end to end.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    bytes: &'a [u8],
    count: usize,
    leaf: bool,
    link: PageId,
}

impl<'a> NodeView<'a> {
    /// Parses the node header; entries stay borrowed from `bytes`.
    ///
    /// Returns an error (instead of [`Node::decode`]'s panic) on an unknown
    /// tag byte or an entry count that overruns the page, so a corrupt
    /// page surfaces as `io::Error` on read paths — `parse` is the single
    /// validation point the accessors rely on.
    pub fn parse(bytes: &'a [u8]) -> io::Result<NodeView<'a>> {
        if bytes.len() < HEADER_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "corrupt B+-tree page: {} bytes, header needs 16",
                    bytes.len()
                ),
            ));
        }
        let tag = bytes[0];
        if tag != TAG_LEAF && tag != TAG_INTERNAL {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt B+-tree page: unknown tag {tag}"),
            ));
        }
        let count = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        if HEADER_LEN + count * ENTRY_LEN > bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "corrupt B+-tree page: {count} entries overrun the {}-byte page",
                    bytes.len()
                ),
            ));
        }
        let link = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        Ok(NodeView {
            bytes,
            count,
            leaf: tag == TAG_LEAF,
            link,
        })
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Leaf: next-leaf page id ([`NIL_PAGE`] for the last leaf).
    /// Internal: leftmost child page id.
    pub fn link(&self) -> PageId {
        self.link
    }

    /// Key of entry `i`.
    #[inline]
    pub fn key(&self, i: usize) -> u64 {
        debug_assert!(i < self.count);
        let off = HEADER_LEN + i * ENTRY_LEN;
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Entry `i` as `(key, value)` (leaf) or `(separator, child)`
    /// (internal).
    #[inline]
    pub fn entry(&self, i: usize) -> (u64, u64) {
        debug_assert!(i < self.count);
        entry_at(self.bytes, i)
    }

    /// Index of the first entry whose key is **not less than** `key`
    /// (binary search over the sorted key column; equivalently the number
    /// of keys `< key`).
    pub fn lower_bound(&self, key: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.count);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Index of the first entry whose key is **greater than** `key` (the
    /// number of keys `<= key`).
    pub fn upper_bound(&self, key: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.count);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_for_standard_pages() {
        assert_eq!(node_capacity(4096), 255);
        assert_eq!(node_capacity(65536), 4095);
        assert_eq!(node_capacity(64), 3);
    }

    #[test]
    #[should_panic]
    fn capacity_rejects_tiny_pages() {
        node_capacity(32);
    }

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: vec![(1, 10), (5, 50), (5, 51), (9, 90)],
            next: 77,
        };
        let page = node.encode(4096);
        assert_eq!(Node::decode(page.as_slice()), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            leftmost: 3,
            entries: vec![(100, 4), (200, 5)],
        };
        let page = node.encode(4096);
        assert_eq!(Node::decode(page.as_slice()), node);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node = Node::empty_leaf();
        let page = node.encode(256);
        let decoded = Node::decode(page.as_slice());
        assert_eq!(decoded, node);
        assert!(decoded.is_empty());
        assert!(decoded.is_leaf());
    }

    #[test]
    fn full_node_roundtrip() {
        let cap = node_capacity(256);
        let entries: Vec<(u64, u64)> = (0..cap as u64).map(|i| (i * 3, i)).collect();
        let node = Node::Leaf {
            entries,
            next: NIL_PAGE,
        };
        let page = node.encode(256);
        assert_eq!(Node::decode(page.as_slice()), node);
    }

    #[test]
    fn view_agrees_with_owned_decode() {
        let node = Node::Leaf {
            entries: vec![(1, 10), (5, 50), (5, 51), (9, 90)],
            next: 77,
        };
        let page = node.encode(4096);
        let view = NodeView::parse(page.as_slice()).unwrap();
        assert!(view.is_leaf());
        assert_eq!(view.len(), 4);
        assert_eq!(view.link(), 77);
        for (i, &(k, v)) in [(1u64, 10u64), (5, 50), (5, 51), (9, 90)]
            .iter()
            .enumerate()
        {
            assert_eq!(view.entry(i), (k, v));
            assert_eq!(view.key(i), k);
        }

        let internal = Node::Internal {
            leftmost: 3,
            entries: vec![(100, 4), (200, 5)],
        };
        let page = internal.encode(4096);
        let view = NodeView::parse(page.as_slice()).unwrap();
        assert!(!view.is_leaf());
        assert_eq!(view.link(), 3);
        assert_eq!(view.entry(1), (200, 5));
    }

    #[test]
    fn view_bounds_match_partition_point() {
        let entries: Vec<(u64, u64)> = vec![(2, 0), (4, 1), (4, 2), (4, 3), (9, 4), (12, 5)];
        let node = Node::Leaf {
            entries: entries.clone(),
            next: NIL_PAGE,
        };
        let page = node.encode(4096);
        let view = NodeView::parse(page.as_slice()).unwrap();
        for probe in 0..15u64 {
            assert_eq!(
                view.lower_bound(probe),
                entries.partition_point(|&(k, _)| k < probe),
                "lower_bound({probe})"
            );
            assert_eq!(
                view.upper_bound(probe),
                entries.partition_point(|&(k, _)| k <= probe),
                "upper_bound({probe})"
            );
        }
    }

    #[test]
    fn view_rejects_corrupt_tag() {
        let mut page = PageBuf::zeroed(256);
        page.as_mut_slice()[0] = 9; // neither leaf nor internal
        assert!(NodeView::parse(page.as_slice()).is_err());
    }

    #[test]
    fn view_rejects_overrunning_count() {
        // Bit-rotted count: header says 0xFFFF entries on a 256-byte page.
        let mut page = PageBuf::zeroed(256);
        page.as_mut_slice()[0] = 1; // leaf
        page.as_mut_slice()[2] = 0xFF;
        page.as_mut_slice()[3] = 0xFF;
        assert!(NodeView::parse(page.as_slice()).is_err());
        // And a buffer shorter than the header.
        assert!(NodeView::parse(&[1u8, 0, 0]).is_err());
    }

    #[test]
    #[should_panic]
    fn encode_rejects_overflow() {
        let cap = node_capacity(64);
        let entries: Vec<(u64, u64)> = (0..=cap as u64).map(|i| (i, i)).collect();
        Node::Leaf {
            entries,
            next: NIL_PAGE,
        }
        .encode(64);
    }
}
