//! Forward range iteration over the leaf chain.

use std::io;
use std::sync::Arc;

use promips_storage::{PageId, Pager};

use crate::node::{Node, NIL_PAGE};

/// Iterator over `(key, value)` pairs with `lo <= key <= hi`, in key order.
///
/// The iterator decodes one leaf at a time and follows `next` pointers;
/// every leaf it touches is charged as a page access on the shared pager,
/// mirroring how a disk scan would behave.
pub struct RangeIter {
    pager: Arc<Pager>,
    entries: Vec<(u64, u64)>,
    pos: usize,
    next_leaf: PageId,
    lo: u64,
    hi: u64,
    done: bool,
}

impl RangeIter {
    pub(crate) fn new(pager: Arc<Pager>, start_leaf: PageId, lo: u64, hi: u64) -> io::Result<Self> {
        let mut iter = Self {
            pager,
            entries: Vec::new(),
            pos: 0,
            next_leaf: start_leaf,
            lo,
            hi,
            done: lo > hi,
        };
        if !iter.done {
            iter.load_next_leaf()?;
            // Skip entries below `lo` in the first leaf.
            iter.pos = iter.entries.partition_point(|&(k, _)| k < lo);
            // The strict-descend rule can land one leaf early when the whole
            // leaf is below `lo`; advance until a usable entry or exhaustion.
            while !iter.done && iter.pos >= iter.entries.len() {
                iter.load_next_leaf()?;
                iter.pos = iter.entries.partition_point(|&(k, _)| k < lo);
            }
        }
        Ok(iter)
    }

    fn load_next_leaf(&mut self) -> io::Result<()> {
        if self.next_leaf == NIL_PAGE {
            self.done = true;
            self.entries.clear();
            self.pos = 0;
            return Ok(());
        }
        let page = self.pager.read(self.next_leaf)?;
        match Node::decode(page.as_slice()) {
            Node::Leaf { entries, next } => {
                self.entries = entries;
                self.pos = 0;
                self.next_leaf = next;
                Ok(())
            }
            Node::Internal { .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "leaf chain pointed at an internal node",
            )),
        }
    }
}

impl Iterator for RangeIter {
    type Item = io::Result<(u64, u64)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            if self.pos < self.entries.len() {
                let (k, v) = self.entries[self.pos];
                if k > self.hi {
                    self.done = true;
                    return None;
                }
                self.pos += 1;
                debug_assert!(k >= self.lo);
                return Some(Ok((k, v)));
            }
            if let Err(e) = self.load_next_leaf() {
                self.done = true;
                return Some(Err(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BTree;

    #[test]
    fn iterates_across_many_leaves() {
        let pager = Arc::new(Pager::in_memory(64, 1024)); // capacity 3
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..64u64 {
            t.insert(k, k).unwrap();
        }
        let all: Vec<u64> = t.scan_all().unwrap().map(|r| r.unwrap().0).collect();
        assert_eq!(all, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_range_yields_nothing() {
        let pager = Arc::new(Pager::in_memory(64, 1024));
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..10u64 {
            t.insert(k * 10, k).unwrap();
        }
        assert_eq!(t.range(91, 95).unwrap().count(), 0);
        assert_eq!(t.range(5, 4).unwrap().count(), 0); // inverted bounds
    }

    #[test]
    fn range_starting_past_last_key() {
        let pager = Arc::new(Pager::in_memory(64, 1024));
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..20u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.range(100, u64::MAX).unwrap().count(), 0);
    }
}
