//! Forward range iteration over the leaf chain.

use std::io;
use std::sync::Arc;

use promips_storage::{PageBuf, PageId, Pager};

use crate::node::{entry_at, NodeView, NIL_PAGE};

/// Iterator over `(key, value)` pairs with `lo <= key <= hi`, in key order.
///
/// The iterator holds the current leaf **page** and reads entries straight
/// from it through a borrowed [`NodeView`] — no per-leaf `Vec` of decoded
/// entries, so range scans allocate nothing once the pages are cached
/// (asserted by the counting-allocator test in `promips_idistance`). Every
/// leaf it touches is charged as a page access on the shared pager,
/// mirroring how a disk scan would behave.
pub struct RangeIter {
    pager: Arc<Pager>,
    /// The current leaf page (`None` once the scan is exhausted). Holding
    /// the `Arc` keeps the page alive even if the pool evicts it.
    page: Option<Arc<PageBuf>>,
    /// Entry count of the current leaf (cached from the header).
    count: usize,
    pos: usize,
    next_leaf: PageId,
    lo: u64,
    hi: u64,
    done: bool,
}

impl RangeIter {
    pub(crate) fn new(pager: Arc<Pager>, start_leaf: PageId, lo: u64, hi: u64) -> io::Result<Self> {
        let mut iter = Self {
            pager,
            page: None,
            count: 0,
            pos: 0,
            next_leaf: start_leaf,
            lo,
            hi,
            done: lo > hi,
        };
        if !iter.done {
            iter.load_next_leaf()?;
            // Skip entries below `lo` in the first leaf.
            iter.pos = iter.view().map_or(0, |v| v.lower_bound(lo));
            // The strict-descend rule can land one leaf early when the whole
            // leaf is below `lo`; advance until a usable entry or exhaustion.
            while !iter.done && iter.pos >= iter.count {
                iter.load_next_leaf()?;
                iter.pos = iter.view().map_or(0, |v| v.lower_bound(lo));
            }
        }
        Ok(iter)
    }

    /// The borrowed view of the current leaf page, if any.
    fn view(&self) -> Option<NodeView<'_>> {
        self.page
            .as_deref()
            .map(|p| NodeView::parse(p.as_slice()).expect("leaf page validated on load"))
    }

    fn load_next_leaf(&mut self) -> io::Result<()> {
        if self.next_leaf == NIL_PAGE {
            self.done = true;
            self.page = None;
            self.count = 0;
            self.pos = 0;
            return Ok(());
        }
        let page = self.pager.read(self.next_leaf)?;
        let view = NodeView::parse(page.as_slice())?;
        if !view.is_leaf() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "leaf chain pointed at an internal node",
            ));
        }
        self.count = view.len();
        self.next_leaf = view.link();
        self.pos = 0;
        self.page = Some(page);
        Ok(())
    }
}

impl Iterator for RangeIter {
    type Item = io::Result<(u64, u64)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            if self.pos < self.count {
                // The page was validated by NodeView::parse when it was
                // loaded; read the entry directly instead of re-parsing
                // the header for every yielded pair.
                let page = self.page.as_deref().expect("position within a loaded leaf");
                let (k, v) = entry_at(page.as_slice(), self.pos);
                if k > self.hi {
                    self.done = true;
                    return None;
                }
                self.pos += 1;
                debug_assert!(k >= self.lo);
                return Some(Ok((k, v)));
            }
            if let Err(e) = self.load_next_leaf() {
                self.done = true;
                return Some(Err(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BTree;

    #[test]
    fn iterates_across_many_leaves() {
        let pager = Arc::new(Pager::in_memory(64, 1024)); // capacity 3
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..64u64 {
            t.insert(k, k).unwrap();
        }
        let all: Vec<u64> = t.scan_all().unwrap().map(|r| r.unwrap().0).collect();
        assert_eq!(all, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_range_yields_nothing() {
        let pager = Arc::new(Pager::in_memory(64, 1024));
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..10u64 {
            t.insert(k * 10, k).unwrap();
        }
        assert_eq!(t.range(91, 95).unwrap().count(), 0);
        assert_eq!(t.range(5, 4).unwrap().count(), 0); // inverted bounds
    }

    #[test]
    fn range_starting_past_last_key() {
        let pager = Arc::new(Pager::in_memory(64, 1024));
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..20u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.range(100, u64::MAX).unwrap().count(), 0);
    }

    #[test]
    fn iteration_survives_cache_eviction_mid_scan() {
        // A pool of 2 pages guarantees the current leaf is evicted while
        // the iterator still holds it; the held Arc must keep it readable.
        let pager = Arc::new(Pager::in_memory(64, 2));
        let mut t = BTree::create(Arc::clone(&pager)).unwrap();
        for k in 0..128u64 {
            t.insert(k, k * 2).unwrap();
        }
        let got: Vec<(u64, u64)> = t.scan_all().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 128);
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, &(k, v))| { k == i as u64 && v == 2 * i as u64 }));
    }
}
