//! Order-preserving encodings for tree keys.
//!
//! The tree stores `u64` keys. iDistance ring keys are naturally integral
//! (Formula 6 of the paper floors to an integer), while QALSH hash keys are
//! real-valued; the standard sign-flip bit transform maps `f64` to `u64` so
//! that the unsigned order of the images equals the numeric order of the
//! pre-images (for all non-NaN floats, with `-0.0 < +0.0`).

/// Maps an `f64` to a `u64` whose unsigned order matches numeric order.
///
/// Negative floats have their bits inverted; non-negative floats get the
/// sign bit flipped. NaNs are rejected.
#[inline]
pub fn f64_to_key(x: f64) -> u64 {
    assert!(!x.is_nan(), "NaN cannot be used as a tree key");
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1u64 << 63)
    }
}

/// Inverse of [`f64_to_key`].
#[inline]
pub fn key_to_f64(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key ^ (1u64 << 63))
    } else {
        f64::from_bits(!key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_of_reference_values() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        let keys: Vec<u64> = vals.iter().map(|&v| f64_to_key(v)).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{keys:?}");
        // -0.0 and 0.0 map to adjacent but distinct keys.
        assert!(f64_to_key(-0.0) < f64_to_key(0.0));
    }

    #[test]
    fn roundtrip_reference_values() {
        for &v in &[-123.456, -0.0, 0.0, 1.0, 6.02e23, f64::MIN, f64::MAX] {
            let back = key_to_f64(f64_to_key(v));
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        f64_to_key(f64::NAN);
    }

    proptest! {
        #[test]
        fn order_preserving(a in proptest::num::f64::NORMAL, b in proptest::num::f64::NORMAL) {
            let (ka, kb) = (f64_to_key(a), f64_to_key(b));
            prop_assert_eq!(a < b, ka < kb);
            prop_assert_eq!(a == b, ka == kb);
        }

        #[test]
        fn roundtrip(a in proptest::num::f64::NORMAL) {
            prop_assert_eq!(key_to_f64(f64_to_key(a)).to_bits(), a.to_bits());
        }
    }
}
