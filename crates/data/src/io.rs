//! Vector file IO: the classic `.fvecs` format (one `i32` dimension header
//! per vector, then `d` little-endian `f32`s) and a cache helper so
//! generated datasets can be reused across bench invocations.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use promips_linalg::Matrix;

/// Writes a matrix as `.fvecs`.
pub fn write_fvecs(path: impl AsRef<Path>, m: &Matrix) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for row in m.iter_rows() {
        w.write_all(&(row.len() as i32).to_le_bytes())?;
        for &v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads an `.fvecs` file. All vectors must share one dimensionality.
pub fn read_fvecs(path: impl AsRef<Path>) -> io::Result<Matrix> {
    let mut r = BufReader::new(File::open(path)?);
    let mut rows: Vec<f32> = Vec::new();
    let mut d: Option<usize> = None;
    let mut n = 0usize;
    loop {
        let mut dim_buf = [0u8; 4];
        match r.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let dim = i32::from_le_bytes(dim_buf) as usize;
        match d {
            None => d = Some(dim),
            Some(expect) if expect != dim => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("mixed dimensions: {expect} vs {dim}"),
                ))
            }
            _ => {}
        }
        let mut buf = vec![0u8; dim * 4];
        r.read_exact(&mut buf)?;
        rows.extend(
            buf.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
        n += 1;
    }
    let d = d.unwrap_or(0);
    Ok(Matrix::from_vec(n, d, rows))
}

/// Generates a dataset through `make` unless a cached `.fvecs` pair already
/// exists under `cache_dir`; returns `(data, queries)` either way.
pub fn cached_or_generate(
    cache_dir: impl AsRef<Path>,
    tag: &str,
    make: impl FnOnce() -> (Matrix, Matrix),
) -> io::Result<(Matrix, Matrix)> {
    let dir = cache_dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let data_path = dir.join(format!("{tag}.data.fvecs"));
    let query_path = dir.join(format!("{tag}.query.fvecs"));
    if data_path.exists() && query_path.exists() {
        return Ok((read_fvecs(&data_path)?, read_fvecs(&query_path)?));
    }
    let (data, queries) = make();
    write_fvecs(&data_path, &data)?;
    write_fvecs(&query_path, &queries)?;
    Ok((data, queries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("promips-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fvecs_roundtrip() {
        let dir = tmpdir("rt");
        let m = Matrix::from_rows(3, vec![vec![1.0, 2.0, 3.0], vec![-4.0, 5.5, 0.25]]);
        let path = dir.join("x.fvecs");
        write_fvecs(&path, &m).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_fvecs() {
        let dir = tmpdir("empty");
        let m = Matrix::zeros(0, 0);
        let path = dir.join("e.fvecs");
        write_fvecs(&path, &m).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back.rows(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_generates_once() {
        let dir = tmpdir("cache");
        let mut calls = 0;
        let make = || {
            (
                Matrix::from_rows(2, vec![vec![1.0, 2.0]]),
                Matrix::from_rows(2, vec![vec![3.0, 4.0]]),
            )
        };
        let (d1, q1) = cached_or_generate(&dir, "t", || {
            calls += 1;
            make()
        })
        .unwrap();
        let (d2, q2) = cached_or_generate(&dir, "t", || panic!("should not regenerate")).unwrap();
        assert_eq!(calls, 1);
        assert_eq!(d1, d2);
        assert_eq!(q1, q2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
