//! The three generator families.
//!
//! Each generator is deterministic in its seed and produces an
//! `(n × d)` matrix. See DESIGN.md §3 for why each family is a faithful
//! stand-in for its paper dataset.

use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;

/// PureSVD-style latent factor items (Netflix / Yahoo stand-ins).
///
/// `o = popularity · W (s ⊙ z)` with a fixed `d × rank` mixing matrix `W`,
/// per-item standard normal latents `z`, power-law singular values
/// `s_r = (r+1)^{-1/2}`, and a log-normal popularity multiplier. This
/// reproduces the two properties of PureSVD item factors that matter for
/// MIPS benchmarking: a decaying spectrum (inner products dominated by a
/// few directions) and a long-tailed 2-norm distribution.
pub fn latent_factor(n: usize, d: usize, rank: usize, popularity_sigma: f64, seed: u64) -> Matrix {
    let rank = rank.min(d).max(1);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);

    // Mixing matrix W: d × rank, entries N(0, 1/rank) so ‖o‖ = O(1).
    let winv = 1.0 / (rank as f64).sqrt();
    let w: Vec<f32> = (0..d * rank)
        .map(|_| (rng.normal() * winv) as f32)
        .collect();
    let sv: Vec<f64> = (0..rank).map(|r| 1.0 / ((r + 1) as f64).sqrt()).collect();

    let mut out = Vec::with_capacity(n * d);
    let mut latent = vec![0.0f64; rank];
    for _ in 0..n {
        for (r, l) in latent.iter_mut().enumerate() {
            *l = rng.normal() * sv[r];
        }
        let popularity = (popularity_sigma * rng.normal()).exp();
        for row in 0..d {
            let mut acc = 0.0f64;
            let base = row * rank;
            for r in 0..rank {
                acc += w[base + r] as f64 * latent[r];
            }
            out.push((acc * popularity) as f32);
        }
    }
    let mut m = Matrix::from_vec(n, d, out);

    // Norm tempering: raw low-rank mixtures produce a heavier 2-norm tail
    // (max/median ≈ 5–7×) than real PureSVD item factors, whose norm
    // histograms (Yan et al. 2018, Fig. 1) peak near ~60% of the maximum —
    // max/median ≈ 1.6–1.8. Rescale each vector's norm toward the median
    // with exponent γ — direction and norm *ordering* are preserved, only
    // the spread is calibrated to the real datasets' documented shape.
    const GAMMA: f64 = 0.35;
    let mut norms: Vec<f64> = (0..n).map(|i| promips_linalg::norm2(m.row(i))).collect();
    let mut sorted = norms.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[n / 2].max(1e-12);
    for (i, raw_norm) in norms.iter_mut().enumerate() {
        let norm = raw_norm.max(1e-12);
        let target = median * (norm / median).powf(GAMMA);
        let scale = (target / norm) as f32;
        for v in m.row_mut(i) {
            *v *= scale;
        }
        *raw_norm = target;
    }
    m
}

/// Block-correlated heavy-tailed features (P53 stand-in).
///
/// Features come in blocks of `block` correlated coordinates (one shared
/// block factor + private noise), and a sparse heavy-tail component makes a
/// small fraction of coordinates spike — mimicking biophysical feature
/// vectors where groups of descriptors co-vary and a few dominate.
pub fn bio_feature(n: usize, d: usize, block: usize, seed: u64) -> Matrix {
    let block = block.clamp(1, d);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * d);
    for _ in 0..n {
        let mut col = 0;
        while col < d {
            let width = block.min(d - col);
            let shared = rng.normal();
            for _ in 0..width {
                let mut v = 0.7 * shared + 0.5 * rng.normal();
                // Sparse heavy tail: ~2% of coordinates get a gamma spike.
                if rng.uniform() < 0.02 {
                    v += rng.gamma(2.0, 1.5) * if rng.uniform() < 0.5 { 1.0 } else { -1.0 };
                }
                out.push(v as f32);
            }
            col += width;
        }
    }
    Matrix::from_vec(n, d, out)
}

/// Gaussian directions with log-uniform norm skew spanning three decades
/// (`‖o‖ ∝ 10^U(−2,1)`).
///
/// I.i.d. Gaussian rows concentrate every 2-norm near `√d`, which makes
/// norm-aware methods (norm-range sharding, Cauchy–Schwarz shard pruning)
/// look inert; real MIPS embedding tables have norm spreads of orders of
/// magnitude. This generator is the standard workload for exercising the
/// sharded fan-out's pruning path — shared by its tests, the
/// `sharded_fanout` benchmark section, and `examples/sharded.rs`.
pub fn norm_skewed(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| {
            let scale = (10.0f64).powf(rng.uniform_range(-2.0, 1.0)) as f32;
            (0..d)
                .map(|_| rng.normal() as f32 * scale)
                .collect::<Vec<f32>>()
        }),
    )
}

/// Non-negative gradient-histogram vectors in the `u8` range (SIFT
/// stand-in): AR(1)-smoothed gamma draws, clipped to `[0, 255]`, with the
/// characteristic many-small / few-large bin profile of SIFT descriptors.
pub fn sift_histogram(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * d);
    for _ in 0..n {
        let mut prev = rng.gamma(1.2, 18.0);
        for _ in 0..d {
            let fresh = rng.gamma(1.2, 18.0);
            // AR(1) smoothing: adjacent histogram bins correlate.
            let v = 0.45 * prev + 0.55 * fresh;
            prev = v;
            out.push(v.clamp(0.0, 255.0).floor() as f32);
        }
    }
    Matrix::from_vec(n, d, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::{dot, norm2};

    #[test]
    fn latent_factor_shape_and_determinism() {
        let a = latent_factor(100, 50, 16, 0.4, 9);
        let b = latent_factor(100, 50, 16, 0.4, 9);
        assert_eq!(a.rows(), 100);
        assert_eq!(a.cols(), 50);
        assert_eq!(a.row(42), b.row(42));
        let c = latent_factor(100, 50, 16, 0.4, 10);
        assert_ne!(a.row(42), c.row(42));
    }

    #[test]
    fn latent_factor_is_low_rank_correlated() {
        // With rank ≪ d, random pairs of points should show much larger
        // |cos| similarity than full-rank gaussian vectors would.
        let m = latent_factor(200, 100, 4, 0.0, 3);
        let mut mean_abs_cos = 0.0;
        let pairs = 100;
        for i in 0..pairs {
            let a = m.row(i);
            let b = m.row(199 - i);
            mean_abs_cos += (dot(a, b) / (norm2(a) * norm2(b))).abs();
        }
        mean_abs_cos /= pairs as f64;
        // Full-rank d=100 gaussians give E|cos| ≈ 0.08; rank 4 gives ≈ 0.4.
        assert!(
            mean_abs_cos > 0.2,
            "mean |cos| {mean_abs_cos} too low for rank-4"
        );
    }

    #[test]
    fn bio_feature_block_correlation() {
        let m = bio_feature(300, 64, 16, 7);
        // Correlation of adjacent coords (same block) should beat
        // far-apart coords (different blocks).
        let col = |j: usize| -> Vec<f64> { (0..300).map(|i| m.row(i)[j] as f64).collect() };
        let corr = |x: &[f64], y: &[f64]| -> f64 {
            let n = x.len() as f64;
            let (mx, my) = (x.iter().sum::<f64>() / n, y.iter().sum::<f64>() / n);
            let cov: f64 = x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum();
            let vx: f64 = x.iter().map(|&a| (a - mx) * (a - mx)).sum();
            let vy: f64 = y.iter().map(|&b| (b - my) * (b - my)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let same_block = corr(&col(1), &col(2));
        let cross_block = corr(&col(1), &col(33));
        assert!(
            same_block > cross_block + 0.2,
            "same {same_block} vs cross {cross_block}"
        );
    }

    #[test]
    fn norm_skewed_spans_decades() {
        let m = norm_skewed(400, 16, 11);
        let norms: Vec<f64> = (0..400).map(|i| norm2(m.row(i))).collect();
        let max = norms.iter().cloned().fold(f64::MIN, f64::max);
        let min = norms.iter().cloned().fold(f64::MAX, f64::min);
        // Log-uniform over 3 decades: the realized spread must be ≫ the
        // ~1.2× of i.i.d. Gaussian rows.
        assert!(max / min > 100.0, "spread {max}/{min} too narrow");
        // Deterministic in the seed.
        assert_eq!(m.row(7), norm_skewed(400, 16, 11).row(7));
    }

    #[test]
    fn sift_histogram_profile() {
        let m = sift_histogram(200, 128, 5);
        let mut all: Vec<f32> = Vec::new();
        for i in 0..200 {
            all.extend_from_slice(m.row(i));
        }
        assert!(all.iter().all(|&v| (0.0..=255.0).contains(&v)));
        // Integral values (histogram counts).
        assert!(all.iter().all(|&v| v.fract() == 0.0));
        // Right-skewed: mean well below the midpoint, some mass above 100.
        let mean = all.iter().map(|&v| v as f64).sum::<f64>() / all.len() as f64;
        assert!(mean < 80.0, "mean {mean}");
        assert!(all.iter().any(|&v| v > 100.0));
    }
}
