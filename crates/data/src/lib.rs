//! Synthetic stand-ins for the four evaluation datasets of the ProMIPS
//! paper (Table III), plus query sampling, exact ground truth and vector
//! file IO.
//!
//! The real datasets (Netflix, Yahoo! Music, P53 mutants, SIFT10M) are not
//! redistributable in this environment, so each is replaced by a seeded
//! generator that reproduces the properties MIPS difficulty actually
//! depends on — dimensionality, scale, and the norm/inner-product
//! distribution shape (see DESIGN.md §3 for the substitution arguments):
//!
//! | paper dataset | n | d | generator |
//! |---|---|---|---|
//! | Netflix | 17,770 | 300 | [`DatasetSpec::netflix`] — PureSVD-style latent factors, log-normal popularity |
//! | Yahoo  | 624,961 | 300 | [`DatasetSpec::yahoo`] — same family, larger scale |
//! | P53    | 31,420 | 5,408 | [`DatasetSpec::p53`] — block-correlated heavy-tailed biophysical features |
//! | Sift   | 11,164,866 | 128 | [`DatasetSpec::sift`] — non-negative gradient-histogram vectors |
//!
//! Paper-scale `n` is the default *spec* value; experiments run a
//! `scale(...)`-reduced version by default so the whole suite executes on a
//! laptop, and the scale factor is recorded in every experiment report.

pub mod dataset;
pub mod gen;
pub mod ground_truth;
pub mod io;

pub use dataset::{Dataset, DatasetKind, DatasetSpec};
pub use ground_truth::{exact_topk, exact_topk_batch, GroundTruth};
