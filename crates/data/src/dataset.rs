//! Dataset specifications and generation entry points.

use promips_linalg::Matrix;

use crate::gen;

/// Which generator family a spec uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetKind {
    /// PureSVD-style latent factors with log-normal popularity scaling
    /// (recommender items — Netflix/Yahoo stand-ins).
    LatentFactor {
        /// Latent rank of the factor model.
        rank: usize,
        /// σ of the log-normal per-item popularity multiplier (controls the
        /// 2-norm long tail that norm-aware methods exploit).
        popularity_sigma: f64,
    },
    /// Block-correlated, heavy-tailed biophysical features (P53 stand-in).
    BioFeature {
        /// Feature block width (features within a block are correlated).
        block: usize,
    },
    /// Non-negative, AR(1)-smoothed gradient-histogram vectors clipped to
    /// the `u8` range (SIFT stand-in).
    SiftHistogram,
}

/// A generate-able dataset description.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Display name used in experiment tables.
    pub name: &'static str,
    /// Number of data points.
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Number of query points (paper: 100).
    pub n_queries: usize,
    /// When true (the paper's protocol), queries are sampled **from the
    /// dataset** — "100 points are randomly selected as the query points".
    /// When false, queries are held-out fresh draws from the same
    /// distribution.
    pub queries_from_data: bool,
    /// Generator seed.
    pub seed: u64,
    /// Generator family.
    pub kind: DatasetKind,
}

/// A generated dataset: `n × d` data plus `n_queries × d` queries drawn
/// from the same distribution (held out of the data).
pub struct Dataset {
    /// Display name.
    pub name: &'static str,
    /// The indexable points.
    pub data: Matrix,
    /// The query workload.
    pub queries: Matrix,
}

impl DatasetSpec {
    /// Netflix stand-in (paper scale: 17,770 × 300).
    pub fn netflix() -> Self {
        Self {
            name: "Netflix",
            n: 17_770,
            d: 300,
            n_queries: 100,
            queries_from_data: true,
            seed: 0x4E7F,
            kind: DatasetKind::LatentFactor {
                rank: 32,
                popularity_sigma: 0.2,
            },
        }
    }

    /// Yahoo! Music stand-in (paper scale: 624,961 × 300).
    pub fn yahoo() -> Self {
        Self {
            name: "Yahoo",
            n: 624_961,
            d: 300,
            n_queries: 100,
            queries_from_data: true,
            seed: 0x7A00,
            kind: DatasetKind::LatentFactor {
                rank: 48,
                popularity_sigma: 0.25,
            },
        }
    }

    /// P53 mutants stand-in (paper scale: 31,420 × 5,408).
    pub fn p53() -> Self {
        Self {
            name: "P53",
            n: 31_420,
            d: 5_408,
            n_queries: 100,
            queries_from_data: true,
            seed: 0x0053,
            kind: DatasetKind::BioFeature { block: 16 },
        }
    }

    /// SIFT10M stand-in (paper scale: 11,164,866 × 128).
    pub fn sift() -> Self {
        Self {
            name: "Sift",
            n: 11_164_866,
            d: 128,
            n_queries: 100,
            queries_from_data: true,
            seed: 0x51F7,
            kind: DatasetKind::SiftHistogram,
        }
    }

    /// All four paper datasets.
    pub fn all_paper() -> Vec<Self> {
        vec![Self::netflix(), Self::yahoo(), Self::p53(), Self::sift()]
    }

    /// Returns a copy with `n` scaled by `factor` (dimensionality is never
    /// scaled — it is structural). `n` is floored at 1,000 points so the
    /// index parameters stay meaningful.
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor in (0,1]");
        self.n = ((self.n as f64 * factor) as usize).max(1_000.min(self.n));
        self
    }

    /// Overrides `n` directly (test workloads).
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Overrides the dimensionality (test workloads).
    pub fn with_d(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Raw data size in bytes (`n × d × 4`), the paper's Table III column.
    pub fn raw_bytes(&self) -> u64 {
        self.n as u64 * self.d as u64 * 4
    }

    /// Runs the generator. Under the paper's protocol
    /// (`queries_from_data = true`) the queries are a random sample of the
    /// data rows; otherwise they are held-out fresh draws from the same
    /// distribution.
    pub fn generate(&self) -> Dataset {
        let total = if self.queries_from_data {
            self.n
        } else {
            self.n + self.n_queries
        };
        let all = match self.kind {
            DatasetKind::LatentFactor {
                rank,
                popularity_sigma,
            } => gen::latent_factor(total, self.d, rank, popularity_sigma, self.seed),
            DatasetKind::BioFeature { block } => gen::bio_feature(total, self.d, block, self.seed),
            DatasetKind::SiftHistogram => gen::sift_histogram(total, self.d, self.seed),
        };
        if self.queries_from_data {
            let mut rng = promips_stats::Xoshiro256pp::seed_from_u64(self.seed ^ 0x5EED);
            let picks = rng.sample_indices(self.n, self.n_queries.min(self.n));
            Dataset {
                name: self.name,
                queries: all.gather(&picks),
                data: all,
            }
        } else {
            let data_rows: Vec<usize> = (0..self.n).collect();
            let query_rows: Vec<usize> = (self.n..total).collect();
            Dataset {
                name: self.name,
                data: all.gather(&data_rows),
                queries: all.gather(&query_rows),
            }
        }
    }

    /// Switches to held-out queries (non-paper protocol).
    pub fn with_held_out_queries(mut self) -> Self {
        self.queries_from_data = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::norm2;

    #[test]
    fn paper_specs_match_table3() {
        let specs = DatasetSpec::all_paper();
        assert_eq!(specs[0].n, 17_770);
        assert_eq!(specs[0].d, 300);
        assert_eq!(specs[1].n, 624_961);
        assert_eq!(specs[2].d, 5_408);
        assert_eq!(specs[3].n, 11_164_866);
        // Table III data sizes: Netflix 84.2MB doesn't match f32 exactly
        // (the paper stores doubles/text); ours is n·d·4.
        assert_eq!(specs[0].raw_bytes(), 17_770 * 300 * 4);
    }

    #[test]
    fn scaling_preserves_dimension() {
        let s = DatasetSpec::sift().scale(0.01);
        assert_eq!(s.d, 128);
        assert!(s.n >= 1_000 && s.n < 11_164_866);
    }

    #[test]
    fn generate_shapes_and_determinism() {
        let spec = DatasetSpec::netflix().with_n(500);
        let a = spec.generate();
        assert_eq!(a.data.rows(), 500);
        assert_eq!(a.data.cols(), 300);
        assert_eq!(a.queries.rows(), 100);
        let b = spec.generate();
        assert_eq!(a.data.row(123), b.data.row(123));
        assert_eq!(a.queries.row(7), b.queries.row(7));
    }

    #[test]
    fn latent_factor_norms_have_calibrated_spread() {
        // The norm distribution must be spread enough that norm-aware
        // methods (H2-ALSH / Range-LSH partitioning) have something to
        // exploit, but tempered to the max/median ≈ 2–3 shape the real
        // PureSVD factors show (Yan et al. 2018, Fig. 1).
        let d = DatasetSpec::netflix().with_n(2_000).generate();
        let norms: Vec<f64> = (0..2_000).map(|i| norm2(d.data.row(i))).collect();
        let max = norms.iter().cloned().fold(0.0, f64::max);
        let mut sorted = norms.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[1_000];
        let ratio = max / median;
        assert!(
            (1.2..=3.5).contains(&ratio),
            "norm max/median {ratio} outside the calibrated range"
        );
    }

    #[test]
    fn sift_like_is_non_negative_u8_range() {
        let d = DatasetSpec::sift().with_n(1_000).generate();
        for i in 0..1_000 {
            for &v in d.data.row(i) {
                assert!((0.0..=255.0).contains(&v), "value {v} outside u8 range");
            }
        }
    }

    #[test]
    fn paper_protocol_queries_are_data_rows() {
        let d = DatasetSpec::netflix().with_n(300).generate();
        for qi in 0..5 {
            let q = d.queries.row(qi);
            assert!(
                (0..300).any(|i| d.data.row(i) == q),
                "query {qi} should be a sampled data row"
            );
        }
    }

    #[test]
    fn held_out_queries_differ_from_data() {
        let d = DatasetSpec::netflix()
            .with_n(300)
            .with_held_out_queries()
            .generate();
        for qi in 0..5 {
            let q = d.queries.row(qi);
            assert!((0..300).all(|i| d.data.row(i) != q));
        }
    }
}
