//! Exact MIP ground truth, computed once per (dataset, queries, k) and
//! reused by the accuracy metrics (overall ratio, recall).

use promips_linalg::Matrix;

/// Exact top-k list for one query: `(id, ip)` sorted by ip descending.
pub type GroundTruth = Vec<(u64, f64)>;

/// Exact top-k MIP points of `q` by linear scan, scored through the blocked
/// `dot4` loop ([`Matrix::dot_rows`]): the query's `f32 → f64` conversions
/// amortize across each four-row block — the same shape candidate
/// verification uses.
pub fn exact_topk(data: &Matrix, q: &[f32], k: usize) -> GroundTruth {
    let n = data.rows();
    let k = k.min(n);
    let mut all: Vec<(u64, f64)> = Vec::with_capacity(n);
    data.dot_rows(0, n, q, |row, ip| all.push((row as u64, ip)));
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Exact top-k for a batch of queries, parallelized over queries with
/// `std::thread::scope`.
pub fn exact_topk_batch(
    data: &Matrix,
    queries: &Matrix,
    k: usize,
    threads: usize,
) -> Vec<GroundTruth> {
    let nq = queries.rows();
    let threads = threads.clamp(1, nq.max(1));
    if threads == 1 {
        return (0..nq)
            .map(|i| exact_topk(data, queries.row(i), k))
            .collect();
    }
    let mut out: Vec<GroundTruth> = vec![Vec::new(); nq];
    let chunk = nq.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let lo = t * chunk;
            s.spawn(move || {
                for (off, gt) in slot.iter_mut().enumerate() {
                    *gt = exact_topk(data, queries.row(lo + off), k);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::dot;
    use promips_stats::Xoshiro256pp;

    fn random(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect()),
        )
    }

    #[test]
    fn topk_is_sorted_and_exact() {
        let data = random(500, 12, 1);
        let q: Vec<f32> = vec![0.5; 12];
        let gt = exact_topk(&data, &q, 10);
        assert_eq!(gt.len(), 10);
        assert!(gt.windows(2).all(|w| w[0].1 >= w[1].1));
        // No unlisted point beats the 10th.
        let worst = gt[9].1;
        for i in 0..500u64 {
            if !gt.iter().any(|&(id, _)| id == i) {
                assert!(dot(data.row(i as usize), &q) <= worst + 1e-12);
            }
        }
    }

    #[test]
    fn batch_matches_single() {
        let data = random(400, 8, 2);
        let queries = random(10, 8, 3);
        let batch = exact_topk_batch(&data, &queries, 5, 4);
        for (i, got) in batch.iter().enumerate() {
            let single = exact_topk(&data, queries.row(i), 5);
            assert_eq!(*got, single);
        }
    }
}
