//! Ablation — Quick-Probe (MIP-Search-II, Algorithm 3) vs the incremental
//! NN search it replaces (MIP-Search-I, Algorithm 1).
//!
//! This is the design claim of paper Section V: determining the searching
//! range up-front avoids fetching and testing projected points one by one.
//! Expected: MIP-Search-II needs no more (usually far fewer) page accesses
//! and less CPU per query at equal accuracy.

use promips_bench::methods::idistance_for;
use promips_bench::metrics::overall_ratio;
use promips_bench::report::{f, Table};
use promips_bench::{write_csv, BenchConfig, Workload};
use promips_core::{ProMips, ProMipsConfig};
use promips_data::DatasetSpec;
use std::time::Instant;

const K: usize = 10;

fn main() {
    let cfg = BenchConfig::from_env();
    let spec = DatasetSpec::netflix(); // paper-scale Netflix
    let w = Workload::prepare(spec, cfg.queries, K);
    let pconfig = ProMipsConfig {
        idistance: idistance_for(w.n()),
        page_size: w.page_size(),
        ..Default::default()
    };
    let index = ProMips::build_in_memory(&w.dataset.data, pconfig).unwrap();

    let mut table = Table::new(&[
        "algorithm",
        "ratio",
        "pages/query",
        "cpu ms/query",
        "verified/query",
    ]);
    for (name, use_probe) in [
        ("MIP-Search-II (Quick-Probe)", true),
        ("MIP-Search-I (incremental)", false),
    ] {
        let mut sum_ratio = 0.0;
        let mut sum_pages = 0.0;
        let mut sum_ms = 0.0;
        let mut sum_verified = 0.0;
        for qi in 0..w.dataset.queries.rows() {
            let q = w.dataset.queries.row(qi);
            index.reset_stats();
            let t = Instant::now();
            let res = if use_probe {
                index.search(q, K).unwrap()
            } else {
                index.search_incremental(q, K).unwrap()
            };
            sum_ms += t.elapsed().as_secs_f64() * 1e3;
            sum_pages += index.access_stats().logical_reads as f64;
            sum_verified += res.verified as f64;
            let neighbors: Vec<promips_baselines::Neighbor> = res
                .items
                .iter()
                .map(|i| promips_baselines::Neighbor { id: i.id, ip: i.ip })
                .collect();
            sum_ratio += overall_ratio(&neighbors, &w.ground_truth[qi], K);
        }
        let nq = w.dataset.queries.rows() as f64;
        table.row(vec![
            name.to_string(),
            f(sum_ratio / nq, 4),
            f(sum_pages / nq, 1),
            f(sum_ms / nq, 3),
            f(sum_verified / nq, 1),
        ]);
    }

    table.print("Ablation: Quick-Probe vs incremental NN search (Netflix, k=10)");
    write_csv("ablation_quickprobe", &table);
}
