//! Table II — time-complexity check.
//!
//! The paper states ProMIPS's query cost is `O(d + n log n)` (dominated in
//! practice by the `O(log n)` index traversal and the `βn·d` verification).
//! This bench sweeps `n` at fixed `d` and prints query time and page
//! accesses so the near-linear-with-small-slope growth is visible, plus the
//! measured `m = argmin f(m)` used at each scale.

use promips_bench::methods::build_promips;
use promips_bench::report::{f, Table};
use promips_bench::{write_csv, Workload};
use promips_core::optimized_projection_dim;
use promips_data::DatasetSpec;
use std::time::Instant;

const K: usize = 10;
const QUERIES: usize = 30;

fn main() {
    let ns = [2_000usize, 4_000, 8_000, 16_000, 32_000];
    let mut table = Table::new(&["n", "m*", "build ms", "query ms", "pages/query"]);

    let mut prev_ms: Option<f64> = None;
    for &n in &ns {
        let spec = DatasetSpec::netflix().with_n(n);
        let w = Workload::prepare(spec, QUERIES, K);
        let built = build_promips(&w, 0.9, 0.5, 42);
        let mut sum_ms = 0.0;
        let mut sum_pages = 0.0;
        for qi in 0..QUERIES {
            built.method.reset_stats();
            let t = Instant::now();
            let _ = built.method.search(w.dataset.queries.row(qi), K).unwrap();
            sum_ms += t.elapsed().as_secs_f64() * 1e3;
            sum_pages += built.method.page_accesses() as f64;
        }
        let ms = sum_ms / QUERIES as f64;
        table.row(vec![
            n.to_string(),
            optimized_projection_dim(n as u64).to_string(),
            f(built.build_ms, 1),
            f(ms, 3),
            f(sum_pages / QUERIES as f64, 1),
        ]);
        if let Some(prev) = prev_ms {
            eprintln!(
                "[table2] n={n}: query-time growth ×{:.2} for n×2",
                ms / prev
            );
        }
        prev_ms = Some(ms);
    }

    table.print("Table II check: ProMIPS query cost vs n (d=300, k=10)");
    write_csv("table2_complexity", &table);
    println!(
        "\npaper claim: O(d + n log n) — query time should grow clearly \
         sub-quadratically (≈×2 or less per n doubling)."
    );
}
