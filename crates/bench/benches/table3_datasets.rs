//! Table III — dataset statistics.
//!
//! Prints the paper's dataset table next to the generated stand-ins at the
//! configured scale, so every other experiment's context is explicit.

use promips_bench::report::{mb, Table};
use promips_bench::{write_csv, BenchConfig, Workload};

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = Table::new(&[
        "dataset",
        "paper n",
        "paper d",
        "generated n",
        "generated d",
        "raw MB",
        "queries",
    ]);
    for spec in cfg.specs() {
        let paper = match spec.name {
            "Netflix" => (17_770, 300),
            "Yahoo" => (624_961, 300),
            "P53" => (31_420, 5_408),
            "Sift" => (11_164_866, 128),
            _ => unreachable!(),
        };
        let w = Workload::prepare(spec, cfg.queries, 1);
        table.row(vec![
            w.spec.name.to_string(),
            paper.0.to_string(),
            paper.1.to_string(),
            w.n().to_string(),
            w.d().to_string(),
            mb(w.n() as u64 * w.d() as u64 * 4),
            cfg.queries.to_string(),
        ]);
    }
    table.print("Table III: datasets (paper vs generated stand-ins)");
    write_csv("table3_datasets", &table);
    println!("\nscale factor: {} (PROMIPS_SCALE)", cfg.scale);
}
