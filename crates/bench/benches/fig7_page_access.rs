//! Fig. 7 — page accesses vs k (one panel per dataset, one series per
//! method).
//!
//! Expected shape (paper): ProMIPS lowest on every dataset at every k
//! (single B+-tree + sub-partition-sequential reads); H2-ALSH worst among
//! the LSH methods; PQ-Based in between (inverted-list scans).

use promips_bench::sweep::{full_sweep_cached, metric_table};
use promips_bench::{write_csv, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = full_sweep_cached(&cfg);
    for dataset in &cfg.datasets {
        let t = metric_table(&rows, dataset, &cfg.ks, |r| r.pages, 1);
        t.print(&format!("Fig 7: page accesses vs k — {dataset}"));
        write_csv(&format!("fig7_page_access_{dataset}"), &t);
    }
}
