//! Fig. 4 — index size (a) and pre-processing time (b) for the four
//! methods on every dataset.
//!
//! Expected shape (paper): ProMIPS smallest index and fastest build on all
//! datasets; PQ-Based worst on both; Range-LSH smaller index but slower
//! build than H2-ALSH.

use promips_bench::methods::build_all_methods;
use promips_bench::report::{f, mb, Table};
use promips_bench::{write_csv, BenchConfig, Workload};

fn main() {
    let cfg = BenchConfig::from_env();
    let mut size_table = Table::new(&["dataset", "ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"]);
    let mut time_table = Table::new(&["dataset", "ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"]);

    for spec in cfg.specs() {
        eprintln!("[fig4] {} (n={}, d={}) …", spec.name, spec.n, spec.d);
        let w = Workload::prepare(spec, 1, 1); // no queries needed
        let methods = build_all_methods(&w, 42);
        size_table.row(
            std::iter::once(w.spec.name.to_string())
                .chain(methods.iter().map(|m| mb(m.index_bytes)))
                .collect(),
        );
        time_table.row(
            std::iter::once(w.spec.name.to_string())
                .chain(methods.iter().map(|m| f(m.build_ms, 1)))
                .collect(),
        );
    }

    size_table.print("Fig 4(a): index size (MB)");
    write_csv("fig4a_index_size", &size_table);
    time_table.print("Fig 4(b): pre-processing time (ms)");
    write_csv("fig4b_preprocessing_time", &time_table);
}
