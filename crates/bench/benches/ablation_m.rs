//! Ablation — the optimized projected dimension (paper Section V-B).
//!
//! Sweeps m around the optimizer's choice `m* = argmin 2^m(m+1) + n/2^m`
//! and reports accuracy, page accesses and CPU time. Expected: accuracy
//! rises with m (better distance preservation) while Quick-Probe group
//! costs rise too; m* balances the two — nearby m should not beat it on
//! the combined cost at comparable accuracy.

use promips_bench::metrics::overall_ratio;
use promips_bench::report::{f, Table};
use promips_bench::{write_csv, BenchConfig, Workload};
use promips_core::{optimized_projection_dim, ProMips, ProMipsConfig};
use promips_data::DatasetSpec;
use std::time::Instant;

const K: usize = 10;

fn main() {
    let cfg = BenchConfig::from_env();
    let w = Workload::prepare(DatasetSpec::netflix(), cfg.queries, K);
    let m_star = optimized_projection_dim(w.n() as u64);
    let m_values: Vec<usize> = [-3i64, -1, 0, 1, 3]
        .iter()
        .filter_map(|&off| {
            let m = m_star as i64 + off;
            (m >= 1).then_some(m as usize)
        })
        .collect();

    let mut table = Table::new(&["m", "ratio", "pages/query", "cpu ms/query"]);
    for &m in &m_values {
        let pconfig = ProMipsConfig {
            m: Some(m),
            idistance: promips_bench::methods::idistance_for(w.n()),
            page_size: w.page_size(),
            ..Default::default()
        };
        let index = ProMips::build_in_memory(&w.dataset.data, pconfig).unwrap();
        let mut sum_ratio = 0.0;
        let mut sum_pages = 0.0;
        let mut sum_ms = 0.0;
        for qi in 0..w.dataset.queries.rows() {
            let q = w.dataset.queries.row(qi);
            index.reset_stats();
            let t = Instant::now();
            let res = index.search(q, K).unwrap();
            sum_ms += t.elapsed().as_secs_f64() * 1e3;
            sum_pages += index.access_stats().logical_reads as f64;
            let neighbors: Vec<promips_baselines::Neighbor> = res
                .items
                .iter()
                .map(|i| promips_baselines::Neighbor { id: i.id, ip: i.ip })
                .collect();
            sum_ratio += overall_ratio(&neighbors, &w.ground_truth[qi], K);
        }
        let nq = w.dataset.queries.rows() as f64;
        let marker = if m == m_star {
            format!("{m} (m*)")
        } else {
            m.to_string()
        };
        table.row(vec![
            marker,
            f(sum_ratio / nq, 4),
            f(sum_pages / nq, 1),
            f(sum_ms / nq, 3),
        ]);
    }

    table.print(&format!(
        "Ablation: projected dimension sweep (Netflix, n={}, m*={m_star}, k={K})",
        w.n()
    ));
    write_csv("ablation_m", &table);
}
