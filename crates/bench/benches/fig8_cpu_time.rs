//! Fig. 8 — CPU time vs k (one panel per dataset, one series per method).
//!
//! Expected shape (paper): PQ-Based fastest CPU (pre-computed ADC tables);
//! ProMIPS comparable and better than both LSH methods; H2-ALSH slowest
//! (collision counting across many trees).

use promips_bench::sweep::{full_sweep_cached, metric_table};
use promips_bench::{write_csv, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = full_sweep_cached(&cfg);
    for dataset in &cfg.datasets {
        let t = metric_table(&rows, dataset, &cfg.ks, |r| r.cpu_ms, 3);
        t.print(&format!("Fig 8: CPU time (ms) vs k — {dataset}"));
        write_csv(&format!("fig8_cpu_time_{dataset}"), &t);
    }
}
