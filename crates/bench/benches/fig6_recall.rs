//! Fig. 6 — recall vs k (one panel per dataset, one series per method).
//!
//! Expected shape (paper): same ordering as Fig. 5 — ProMIPS leads,
//! recall decreasing mildly with k on the harder datasets.

use promips_bench::sweep::{full_sweep_cached, metric_table};
use promips_bench::{write_csv, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = full_sweep_cached(&cfg);
    for dataset in &cfg.datasets {
        let t = metric_table(&rows, dataset, &cfg.ks, |r| r.recall, 4);
        t.print(&format!("Fig 6: recall vs k — {dataset}"));
        write_csv(&format!("fig6_recall_{dataset}"), &t);
    }
}
