//! Kernel + query-pipeline microbenchmark, emitting `BENCH_kernels.json`.
//!
//! Measures the runtime-dispatched SIMD kernels against the portable scalar
//! reference at the paper-typical d = 128, the projection paths, and the
//! single-query vs batched search pipeline. The JSON artifact is the
//! perf-trajectory record for this repository: later PRs regenerate it and
//! compare.
//!
//! Run with `cargo bench --bench bench_kernels`. Output path defaults to
//! `BENCH_kernels.json` in the working directory; override with
//! `PROMIPS_BENCH_OUT`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use promips_bench::micro::{ns_per_op, Json, MicroBench};
use promips_core::{ProMips, ProMipsConfig, SearchScratch};
use promips_data::ground_truth::exact_topk_batch;
use promips_idistance::layout::{enc, read_blob_range};
use promips_idistance::{build_index, IDistanceConfig, ProjScratch, RangeCandidate};
use promips_linalg::dispatch::available_backends;
use promips_linalg::{
    active_backend, dist, dot, norm1, scalar, sq_dist, sq_dist4_i8, sq_norm2, Matrix,
};
use promips_shard::{
    CompactionPolicy, DegradationPolicy, QueryBudget, QueryError, ShardedConfig, ShardedProMips,
    ShardedScratch, SyncPolicy,
};
use promips_stats::Xoshiro256pp;
use promips_storage::durability::faults;
use promips_storage::{AccessStats, MemStorage, PageBuf, Pager};

const D: usize = 128;
const M: usize = 16;

fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

/// `(simd_ns, scalar_ns)` pair plus speedup as a JSON object.
fn pair(simd_ns: f64, scalar_ns: f64) -> Json {
    Json::obj(vec![
        ("simd_ns", Json::Num(simd_ns)),
        ("scalar_ns", Json::Num(scalar_ns)),
        ("speedup", Json::Num(scalar_ns / simd_ns)),
    ])
}

/// Rows of a (ROWS × d) pair of operand sets — each timed op sweeps every
/// row pair, amortizing call/timer overhead so the reading reflects kernel
/// loop throughput rather than harness boundaries.
const ROWS: usize = 32;

fn main() {
    let backend = active_backend();
    println!("kernel backend: {backend}");
    let mut b = MicroBench::new();

    // --- observability overhead ---------------------------------------------
    // The same sharded query under three observation regimes: the timing
    // kill-switch off (no clock reads, no latency histograms — the
    // baseline), the default instrumented path, and full per-query
    // tracing. The acceptance bar is the default path within 2% of the
    // baseline; tracing is opt-in and may cost more. This section runs
    // FIRST: the regimes differ by ~1%, and ten minutes of prior bench
    // sections leave enough thermal/allocator residue to swamp that.
    let obs_n = 4_000usize;
    let obs_d = 32usize;
    let obs_k = 10usize;
    println!("\nobservability overhead ({obs_n} rows, d = {obs_d}):");
    let obs_cfg = ShardedConfig::builder()
        .shards(3)
        .base(ProMipsConfig::builder().c(0.9).p(0.5).seed(97).build())
        .build();
    let obs_data = promips_data::gen::norm_skewed(obs_n, obs_d, 91);
    let obs_idx = ShardedProMips::build_in_memory(&obs_data, obs_cfg).expect("build");
    let obs_scratch = ShardedScratch::for_index(&obs_idx);
    let obs_nq = 16usize;
    let obs_queries = random_matrix(obs_nq, obs_d, 505);
    promips_obs::slow::configure(u64::MAX, 0); // keep the traced loop log-free

    // The three regimes differ by well under the run-to-run drift of a
    // ~200 us query, so measuring them as three back-to-back ns_per_op
    // blocks would attribute frequency/scheduler drift between blocks to
    // the instrumentation. Instead: calibrate one rep size, then
    // interleave the regimes round-robin and keep each regime's fastest
    // rep — drift hits all three equally and the min filters it out.
    let run_query = |traced: bool, i: usize| -> usize {
        let q = obs_queries.row(i % obs_nq);
        if traced {
            obs_idx
                .search_traced_threaded(q, obs_k, 1, &obs_scratch)
                .unwrap()
                .0
                .items
                .len()
        } else {
            obs_idx
                .search_threaded(q, obs_k, 1, &obs_scratch)
                .unwrap()
                .items
                .len()
        }
    };
    let rep_iters = {
        let warm = std::time::Instant::now();
        for i in 0..(2 * obs_nq) {
            std::hint::black_box(run_query(false, i));
        }
        let per_call = warm.elapsed().as_secs_f64() / (2 * obs_nq) as f64;
        ((0.015 / per_call).ceil() as u64).max(obs_nq as u64)
    };
    // (timing, traced, sample_every, aggregator) per regime; the order
    // rotates every round so any periodic interference spreads evenly.
    // The last two regimes are the serving defaults under test: 1-in-64
    // sampled tracing, then sampling plus a live background aggregator
    // ticking the windowed-metrics ring (at an aggressive 5 ms cadence —
    // 200x the production 1 s default, so the bar is conservative).
    let regimes: [(bool, bool, u64, bool); 5] = [
        (false, false, 0, false), // kill-switch baseline
        (true, false, 0, false),  // default instrumented path
        (true, true, 0, false),   // explicit per-query tracing
        (true, false, 64, false), // + 1-in-64 sampled tracing
        (true, false, 64, true),  // + background aggregator
    ];
    let rep = |(timing, traced, sample_every, aggregator): (bool, bool, u64, bool)| -> f64 {
        promips_obs::set_timing_enabled(timing);
        promips_obs::sampling::set_sample_every(sample_every);
        let agg = aggregator.then(|| {
            promips_obs::window::start_global_aggregator(std::time::Duration::from_millis(5))
                .expect("spawn aggregator")
        });
        let start = std::time::Instant::now();
        for i in 0..rep_iters {
            std::hint::black_box(run_query(traced, i as usize));
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / rep_iters as f64;
        drop(agg);
        promips_obs::set_timing_enabled(true);
        promips_obs::sampling::set_sample_every(0);
        ns
    };
    let mut mins = [f64::INFINITY; 5];
    for round in 0..24 {
        for j in 0..regimes.len() {
            let ri = (round + j) % regimes.len();
            mins[ri] = mins[ri].min(rep(regimes[ri]));
        }
    }
    let (untimed_ns, timed_ns, traced_ns, sampled_ns, aggregated_ns) =
        (mins[0], mins[1], mins[2], mins[3], mins[4]);
    promips_obs::slow::configure(0, 16);
    promips_obs::sampling::set_sample_every(promips_obs::sampling::DEFAULT_SAMPLE_EVERY);
    let pct = |ns: f64| (ns - untimed_ns) / untimed_ns * 100.0;
    let obs_overhead_pct = pct(timed_ns);
    let traced_overhead_pct = pct(traced_ns);
    let sampling_overhead_pct = pct(sampled_ns);
    let aggregator_overhead_pct = pct(aggregated_ns);
    println!(
        "  timing off {untimed_ns:.0} ns, on {timed_ns:.0} ns ({obs_overhead_pct:+.2}%), \
         traced {traced_ns:.0} ns ({traced_overhead_pct:+.2}%)"
    );
    println!(
        "  sampled(1/64) {sampled_ns:.0} ns ({sampling_overhead_pct:+.2}%), \
         + aggregator {aggregated_ns:.0} ns ({aggregator_overhead_pct:+.2}%)"
    );
    drop(obs_idx);
    drop(obs_scratch);

    // --- windowed metrics ---------------------------------------------------
    // Fixed costs of the aggregation tier itself: one tick (registry
    // snapshot + saturating diff + ring push) and one 60 s window merge
    // over a full 64-interval ring.
    println!("\nwindowed metrics:");
    let win_reg = promips_obs::Registry::new();
    for i in 0..1000u64 {
        win_reg.counter(promips_obs::CounterId::Queries).inc();
        win_reg
            .histogram(promips_obs::HistoId::QueryLatencyNs)
            .record(i * 997);
    }
    let win = promips_obs::MetricsWindow::new();
    win.tick(&win_reg); // baseline
    let window_tick_ns = ns_per_op(|| {
        win.tick(std::hint::black_box(&win_reg));
        0.0
    });
    // The ring is full (capacity 64) after the calibration above; merge
    // the whole thing.
    let window_merge_ns = ns_per_op(|| {
        std::hint::black_box(win.window(promips_obs::window::HORIZON_60S).intervals as f64)
    });
    println!("  tick {window_tick_ns:.0} ns, 60s window merge {window_merge_ns:.0} ns");

    // --- kernels at d = 128 -------------------------------------------------
    let am = random_matrix(ROWS, D, 7);
    let cm = random_matrix(ROWS, D, 8);
    let sweep2 = |f: &dyn Fn(&[f32], &[f32]) -> f64| -> f64 {
        let mut s = 0.0;
        for i in 0..ROWS {
            s += f(std::hint::black_box(am.row(i)), cm.row(i));
        }
        s
    };
    let sweep1 = |f: &dyn Fn(&[f32]) -> f64| -> f64 {
        let mut s = 0.0;
        for i in 0..ROWS {
            s += f(std::hint::black_box(am.row(i)));
        }
        s
    };
    let per_row = |ns: f64| ns / ROWS as f64;

    // The deployed dot path: `verify_groups` runs candidate rows against a
    // fixed query four at a time through `dot4`, so the query's f32→f64
    // conversions amortize across the block. The scalar fallback's deployed
    // shape is four plain dots (see `scalar::dot4`). Per-row numbers.
    let q: Vec<f32> = cm.row(0).to_vec();
    let dot_simd = per_row(ns_per_op(|| {
        let mut s = [0.0f64; 4];
        let mut i = 0;
        while i + 4 <= ROWS {
            let r = promips_linalg::dot4(
                am.row(i),
                am.row(i + 1),
                am.row(i + 2),
                am.row(i + 3),
                std::hint::black_box(&q),
            );
            s[0] += r[0];
            s[1] += r[1];
            s[2] += r[2];
            s[3] += r[3];
            i += 4;
        }
        s
    }));
    let dot_scalar = per_row(ns_per_op(|| {
        let mut s = 0.0;
        for i in 0..ROWS {
            s += scalar::dot(am.row(i), std::hint::black_box(&q));
        }
        s
    }));
    let dot_single_simd = per_row(ns_per_op(|| sweep2(&|x, y| dot(x, y))));
    let dot_single_scalar = per_row(ns_per_op(|| sweep2(&scalar::dot)));
    let sqd_simd = per_row(ns_per_op(|| sweep2(&|x, y| sq_dist(x, y))));
    let sqd_scalar = per_row(ns_per_op(|| sweep2(&scalar::sq_dist)));
    // The deployed annulus-filter shape: four contiguous rows against one
    // projected query through the blocked sq_dist4 (the arena scan's inner
    // loop); the scalar reference is the per-row single kernel.
    let sqd4_simd = per_row(ns_per_op(|| {
        let mut s = [0.0f64; 4];
        let mut i = 0;
        while i + 4 <= ROWS {
            let r = promips_linalg::sq_dist4(
                am.row(i),
                am.row(i + 1),
                am.row(i + 2),
                am.row(i + 3),
                std::hint::black_box(&q),
            );
            s[0] += r[0];
            s[1] += r[1];
            s[2] += r[2];
            s[3] += r[3];
            i += 4;
        }
        s
    }));
    let sqd4_scalar = per_row(ns_per_op(|| {
        let mut s = 0.0;
        for i in 0..ROWS {
            s += scalar::sq_dist(am.row(i), std::hint::black_box(&q));
        }
        s
    }));
    // The quantized filter shape: four contiguous u8 code rows against one
    // quantized query through the blocked integer kernel — 1 byte per
    // coordinate instead of 4. Scalar reference: the portable integer
    // fallback in the same blocked shape.
    type SqDist4I8Ref<'a> = &'a dyn Fn(&[u8], &[u8], &[u8], &[u8], &[u8]) -> [u32; 4];
    let code_rows: Vec<u8> = (0..ROWS * D).map(|i| (i * 37 % 256) as u8).collect();
    let qcode: Vec<u8> = (0..D).map(|i| (i * 91 % 256) as u8).collect();
    let sqd4_i8 = |f: SqDist4I8Ref| -> f64 {
        per_row(ns_per_op(|| {
            let mut s = [0u32; 4];
            let mut i = 0;
            while i + 4 <= ROWS {
                let base = i * D;
                let r = f(
                    &code_rows[base..base + D],
                    &code_rows[base + D..base + 2 * D],
                    &code_rows[base + 2 * D..base + 3 * D],
                    &code_rows[base + 3 * D..base + 4 * D],
                    std::hint::black_box(&qcode),
                );
                s[0] = s[0].wrapping_add(r[0]);
                s[1] = s[1].wrapping_add(r[1]);
                s[2] = s[2].wrapping_add(r[2]);
                s[3] = s[3].wrapping_add(r[3]);
                i += 4;
            }
            s
        }))
    };
    let sqd4_i8_simd = sqd4_i8(&|a0, a1, a2, a3, b| sq_dist4_i8(a0, a1, a2, a3, b));
    let sqd4_i8_scalar = sqd4_i8(&scalar::sq_dist4_i8);
    let sqn_simd = per_row(ns_per_op(|| sweep1(&|x| sq_norm2(x))));
    let sqn_scalar = per_row(ns_per_op(|| sweep1(&scalar::sq_norm2)));
    let n1_simd = per_row(ns_per_op(|| sweep1(&|x| norm1(x))));
    let n1_scalar = per_row(ns_per_op(|| sweep1(&scalar::norm1)));
    for (name, ns) in [
        ("dot_128d (verify shape, dot4-blocked)", dot_simd),
        ("dot_128d_scalar (verify shape)", dot_scalar),
        ("dot_128d_single", dot_single_simd),
        ("dot_128d_single_scalar", dot_single_scalar),
        ("sq_dist_128d", sqd_simd),
        ("sq_dist_128d_scalar", sqd_scalar),
        ("sq_dist_128d (scan shape, sq_dist4-blocked)", sqd4_simd),
        ("sq_dist_128d_scalar (scan shape)", sqd4_scalar),
        ("sq_dist_128d_i8 (SQ8 filter shape)", sqd4_i8_simd),
        ("sq_dist_128d_i8_scalar (SQ8 filter shape)", sqd4_i8_scalar),
        ("sq_norm2_128d", sqn_simd),
        ("sq_norm2_128d_scalar", sqn_scalar),
        ("norm1_128d", n1_simd),
        ("norm1_128d_scalar", n1_scalar),
    ] {
        println!("  {name}: {ns:.1} ns/op");
    }

    // Per-backend breakdown: every SIMD tier this host can execute, so the
    // artifact records each tier's speedup over the portable fallback even
    // when the dispatcher picks a wider one.
    let mut backend_rows: Vec<(String, Json)> = Vec::new();
    let mut scalar_row_dot = f64::NAN;
    for k in available_backends() {
        let dns = per_row(ns_per_op(|| sweep2(&|x, y| (k.dot)(x, y))));
        let sns = per_row(ns_per_op(|| sweep2(&|x, y| (k.sq_dist)(x, y))));
        println!(
            "  dot_128d[{}]: {dns:.1} ns/op  sq_dist_128d[{}]: {sns:.1} ns/op",
            k.name, k.name
        );
        if k.name == "scalar" {
            scalar_row_dot = dns;
        }
        backend_rows.push((
            k.name.to_string(),
            Json::obj(vec![
                ("dot_ns", Json::Num(dns)),
                ("dot_speedup_vs_scalar", Json::Num(scalar_row_dot / dns)),
                ("sq_dist_ns", Json::Num(sns)),
            ]),
        ));
    }

    // --- projection: blocked matvec vs the pre-SIMD shape -------------------
    let a: Vec<f32> = am.row(0).to_vec();
    let projection = promips_core::projection::Projection::generate(M, D, 11);
    let mut pq = Vec::new();
    let proj_simd = b.run("project_128d_to_16d", || {
        projection.project_into(std::hint::black_box(&a), &mut pq);
        pq.len()
    });
    // Reference: what project() compiled to before this PR — one allocating
    // scalar dot per projection row.
    let vrows = projection.matrix().clone();
    let proj_scalar = b.run("project_128d_to_16d_scalar", || {
        let q = std::hint::black_box(&a);
        vrows
            .iter_rows()
            .map(|row| scalar::dot(row, q) as f32)
            .collect::<Vec<f32>>()
    });

    // Whole-dataset projection (the build-time hot loop).
    let chunk = random_matrix(2_000, D, 21);
    let gemm_ns = ns_per_op(|| projection.project_all(std::hint::black_box(&chunk)));
    println!("  project_all_2000x128_to_16 (gemm): {gemm_ns:.1} ns/op");
    let gemm_scalar_ns = ns_per_op(|| {
        let data = std::hint::black_box(&chunk);
        let mut rows = Vec::with_capacity(data.rows() * M);
        for row in data.iter_rows() {
            rows.extend(vrows.iter_rows().map(|v| scalar::dot(v, row) as f32));
        }
        Matrix::from_vec(data.rows(), M, rows)
    });
    println!("  project_all_2000x128_to_16 (scalar rowwise): {gemm_scalar_ns:.1} ns/op");

    // --- projected scan: legacy per-record decode vs arena + sq_dist4 -------
    // Sweeps every sub-partition of a realistic index with an annulus
    // filter. The legacy shape is what `scan_subpart` shipped as before the
    // arena: decode each record into a fresh `Vec<f32>`, then a single-row
    // `dist` per record. The arena shape is the deployed path: one
    // `ProjScratch` decode per sub-partition, blocked `sq_dist4` filter.
    let scan_n = 8_000;
    let scan_m = 16;
    let scan_data = random_matrix(scan_n, scan_m, 51);
    let scan_orig = random_matrix(scan_n, 8, 52);
    let scan_pager = Arc::new(Pager::in_memory(4096, 1 << 16));
    let scan_cfg = IDistanceConfig {
        kp: 4,
        nkey: 8,
        ksp: 3,
        ..Default::default()
    };
    let scan_idx = build_index(scan_pager, &scan_data, &scan_orig, &scan_cfg).expect("scan index");
    let n_subs = scan_idx.subparts().len() as u32;
    let scan_q: Vec<f32> = scan_data.row(0).to_vec();
    let (r_lo, r_hi) = (0.5, 4.0);
    let per_record = |ns: f64| ns / scan_n as f64;
    let mut cands: Vec<RangeCandidate> = Vec::new();
    let mut proj = ProjScratch::new();
    let arena_scan_ns = per_record(ns_per_op(|| {
        cands.clear();
        for sub in 0..n_subs {
            scan_idx.read_subpart_proj_into(sub, &mut proj).unwrap();
            proj.for_each_dist(std::hint::black_box(&scan_q), |offset, id, pd| {
                if pd > r_lo && pd <= r_hi {
                    cands.push(RangeCandidate {
                        id,
                        proj_dist: pd,
                        subpart: sub,
                        offset: offset as u32,
                    });
                }
            });
        }
        cands.len()
    }));
    // The true pre-arena shape, hand-rolled (the owning decode it measures
    // — the old read_subpart_proj — has been removed from the library):
    // one blob read per sub-partition, one fresh Vec<f32> per record,
    // single-row dist filter.
    let rec_bytes = 8 + 4 * scan_m;
    let legacy_scan_ns = per_record(ns_per_op(|| {
        cands.clear();
        for sub in 0..n_subs {
            let sp = &scan_idx.subparts()[sub as usize];
            let blob = read_blob_range(
                scan_idx.pager(),
                scan_idx.proj_region().0,
                sp.proj_off as usize,
                sp.count as usize * rec_bytes,
            )
            .unwrap();
            let mut pos = 0;
            for offset in 0..sp.count {
                let id = enc::get_u64(&blob, &mut pos);
                let pv = enc::get_f32s(&blob, &mut pos, scan_m);
                let pd = dist(&pv, std::hint::black_box(&scan_q));
                if pd > r_lo && pd <= r_hi {
                    cands.push(RangeCandidate {
                        id,
                        proj_dist: pd,
                        subpart: sub,
                        offset,
                    });
                }
            }
        }
        cands.len()
    }));
    println!("  scan_arena (per record): {arena_scan_ns:.1} ns");
    println!("  scan_legacy_decode (per record): {legacy_scan_ns:.1} ns");

    // --- quantized two-level scan vs pure-f32 scan --------------------------
    // The deployed annulus entry point (`range_candidates_into`) over two
    // builds of the same data: the default quantized index (u8 filter tier,
    // survivor blocks re-tested in f32) and a `quantize: false` twin (pure
    // f32 scan — the pre-quantization deployed path). Identical layout and
    // seeds, so both scan the same sub-partitions; the outputs are asserted
    // identical, making the speedup an equal-output comparison. Page counts
    // are cold-cache logical reads for one query: the quantized pass reads
    // the m-byte code column and only surviving blocks' f32 records instead
    // of every (8 + 4m)-byte record.
    let scan_cfg_f32 = IDistanceConfig {
        quantize: false,
        ..scan_cfg.clone()
    };
    let scan_pager_f32 = Arc::new(Pager::in_memory(4096, 1 << 16));
    let scan_idx_f32 =
        build_index(scan_pager_f32, &scan_data, &scan_orig, &scan_cfg_f32).expect("f32 scan index");
    assert!(scan_idx.quantized() && !scan_idx_f32.quantized());
    let mut out_q: Vec<RangeCandidate> = Vec::new();
    let mut out_f: Vec<RangeCandidate> = Vec::new();
    scan_idx
        .range_candidates_into(&scan_q, r_lo, r_hi, &mut out_q, &mut proj)
        .unwrap();
    scan_idx_f32
        .range_candidates_into(&scan_q, r_lo, r_hi, &mut out_f, &mut proj)
        .unwrap();
    assert_eq!(out_q, out_f, "two-level scan must match the pure-f32 scan");
    // Two annulus regimes: `dense` (the `scan` section's window, ~5% of the
    // dataset in the annulus — a CPU-throughput stress where nearly every
    // 4-row block holds a survivor) and `selective` (~0.1%, the regime the
    // deployed search actually runs in: the Quick-Probe radius targets the
    // k nearest projected neighbours, so true candidates are rare and the
    // quantized filter skips whole f32 record pages — the paper's
    // page-access regime, fig. 7).
    let mut quant_windows: Vec<(String, Json)> = Vec::new();
    for (window, w_lo, w_hi) in [("dense", r_lo, r_hi), ("selective", -1.0, 2.8)] {
        scan_idx
            .range_candidates_into(&scan_q, w_lo, w_hi, &mut out_q, &mut proj)
            .unwrap();
        scan_idx_f32
            .range_candidates_into(&scan_q, w_lo, w_hi, &mut out_f, &mut proj)
            .unwrap();
        assert_eq!(out_q, out_f, "two-level scan must match the pure-f32 scan");
        let cands = out_q.len();
        let quant_ns = per_record(ns_per_op(|| {
            scan_idx
                .range_candidates_into(&scan_q, w_lo, w_hi, &mut out_q, &mut proj)
                .unwrap();
            out_q.len()
        }));
        let f32_ns = per_record(ns_per_op(|| {
            scan_idx_f32
                .range_candidates_into(&scan_q, w_lo, w_hi, &mut out_f, &mut proj)
                .unwrap();
            out_f.len()
        }));
        let mut cold_pages = |idx: &promips_idistance::IDistanceIndex,
                              out: &mut Vec<RangeCandidate>| {
            idx.pager().clear_cache();
            idx.pager().stats().reset();
            idx.range_candidates_into(&scan_q, w_lo, w_hi, out, &mut proj)
                .unwrap();
            idx.access_stats().logical_reads
        };
        let quant_pages = cold_pages(&scan_idx, &mut out_q);
        let f32_pages = cold_pages(&scan_idx_f32, &mut out_f);
        println!(
            "  scan_{window} ({cands} candidates): quantized {quant_ns:.1} ns/record \
             ({quant_pages} pages), f32 {f32_ns:.1} ns/record ({f32_pages} pages)"
        );
        quant_windows.push((
            window.to_string(),
            Json::obj(vec![
                ("r_lo", Json::Num(w_lo)),
                ("r_hi", Json::Num(w_hi)),
                ("candidates", Json::Num(cands as f64)),
                ("quantized_ns_per_record", Json::Num(quant_ns)),
                ("f32_ns_per_record", Json::Num(f32_ns)),
                ("speedup", Json::Num(f32_ns / quant_ns)),
                ("quantized_pages_per_query", Json::Num(quant_pages as f64)),
                ("f32_pages_per_query", Json::Num(f32_pages as f64)),
                (
                    "pages_saved_frac",
                    Json::Num(1.0 - quant_pages as f64 / f32_pages as f64),
                ),
            ]),
        ));
    }

    // --- pager contention: single-mutex pool vs lock-striped pool -----------
    // Four threads hammer a shared pager whose pool holds half the pages, so
    // every read takes the pool lock (hit) and half also evict (miss). The
    // 1-shard pool is the pre-striping design.
    let contention = |shards: usize| -> f64 {
        let storage = Arc::new(MemStorage::new(256));
        let n_pages = 512u64;
        let pager = Arc::new(Pager::with_pool_shards(
            storage,
            256,
            shards,
            AccessStats::new_shared(),
        ));
        for _ in 0..n_pages {
            pager.append(PageBuf::zeroed(256)).unwrap();
        }
        let threads = 4u64;
        let reads_per_thread = 50_000u64;
        let ns = ns_per_op(|| {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let pager = Arc::clone(&pager);
                    s.spawn(move || {
                        for i in 0..reads_per_thread {
                            let id = (i * 17 + t * 131) % n_pages;
                            std::hint::black_box(pager.read(id).unwrap());
                        }
                    });
                }
            })
        });
        ns / (threads * reads_per_thread) as f64
    };
    let pool_1shard_ns = contention(1);
    let pool_striped_ns = contention(promips_storage::DEFAULT_SHARDS);
    println!("  pager_read_4t_1shard (per read): {pool_1shard_ns:.1} ns");
    println!(
        "  pager_read_4t_{}shard (per read): {pool_striped_ns:.1} ns",
        promips_storage::DEFAULT_SHARDS
    );

    // --- query pipeline: sequential vs batched ------------------------------
    let n = 8_000;
    let nq = 64;
    let k = 10;
    let threads = 8;
    let data = random_matrix(n, D, 31);
    let cfg = ProMipsConfig::builder().c(0.9).p(0.5).seed(77).build();
    let index = ProMips::build_in_memory(&data, cfg).expect("index build");
    let queries = random_matrix(nq, D, 41);
    let query_refs: Vec<&[f32]> = (0..nq).map(|i| queries.row(i)).collect();

    let mut scratch = SearchScratch::new();
    let seq_ns = ns_per_op(|| {
        for q in &query_refs {
            std::hint::black_box(index.search_with_scratch(q, k, &mut scratch).unwrap());
        }
    }) / nq as f64;
    println!("  search_seq (per query): {seq_ns:.1} ns");
    let batch_ns = ns_per_op(|| {
        std::hint::black_box(
            index
                .search_batch_threaded(&query_refs, k, threads)
                .unwrap(),
        )
    }) / nq as f64;
    println!("  search_batch_{threads}t (per query): {batch_ns:.1} ns");

    // --- sharded fan-out: 1 / 4 / 16 norm-range shards ----------------------
    // Norm-skewed rows (log-uniform scales over ~3 decades) — the regime
    // where norm-range partitioning and Cauchy–Schwarz shard pruning bite;
    // i.i.d. Gaussian rows concentrate all norms near √d and never prune.
    let shard_data = promips_data::gen::norm_skewed(n, D, 61);
    let shard_queries = random_matrix(nq, D, 71);
    let mut shard_rows: Vec<(String, Json)> = Vec::new();
    let mut one_shard_ns = f64::NAN;
    for &shards in &[1usize, 4, 16] {
        let cfg = ShardedConfig::builder()
            .shards(shards)
            .base(ProMipsConfig::builder().c(0.9).p(0.5).seed(77).build())
            .build();
        let sharded = ShardedProMips::build_in_memory(&shard_data, cfg).expect("sharded build");
        let scratch = ShardedScratch::for_index(&sharded);
        let mut pruned = 0usize;
        let mut verified = 0usize;
        for i in 0..nq {
            let res = sharded
                .search_with_scratch(shard_queries.row(i), k, &scratch)
                .unwrap();
            pruned += res.shards_pruned();
            verified += res.verified;
        }
        let fan_ns = ns_per_op(|| {
            for i in 0..nq {
                std::hint::black_box(
                    sharded
                        .search_with_scratch(shard_queries.row(i), k, &scratch)
                        .unwrap(),
                );
            }
        }) / nq as f64;
        if shards == 1 {
            one_shard_ns = fan_ns;
        }
        let pruned_avg = pruned as f64 / nq as f64;
        let verified_avg = verified as f64 / nq as f64;
        println!(
            "  sharded_search_{shards} (per query): {fan_ns:.1} ns  \
             (avg {pruned_avg:.1} shards pruned, {verified_avg:.0} verified)"
        );
        shard_rows.push((
            format!("shards_{shards}"),
            Json::obj(vec![
                ("ns_per_query", Json::Num(fan_ns)),
                ("pruned_avg", Json::Num(pruned_avg)),
                ("verified_avg", Json::Num(verified_avg)),
                ("speedup_vs_1_shard", Json::Num(one_shard_ns / fan_ns)),
            ]),
        ));
    }

    // --- floor_tradeoff: recall vs verified count, cross_shard_floor --------
    // The shard layer's opt-in `cross_shard_floor` mode passes the seed
    // shard's k-th inner product into every surviving shard as a
    // termination floor — fewer verified candidates, but the searching
    // conditions can fire early enough to cost recall. This quantifies the
    // trade on the same norm-skewed workload as `sharded_fanout`: recall
    // against the exact ground truth and the average verified count, floor
    // off vs on, at 4 and 16 shards.
    let gt = exact_topk_batch(&shard_data, &shard_queries, k, 1);
    let mut floor_rows: Vec<(String, Json)> = Vec::new();
    for &shards in &[4usize, 16] {
        for &floor_on in &[false, true] {
            let cfg = ShardedConfig::builder()
                .shards(shards)
                .cross_shard_floor(floor_on)
                .base(ProMipsConfig::builder().c(0.9).p(0.5).seed(77).build())
                .build();
            let sharded = ShardedProMips::build_in_memory(&shard_data, cfg).expect("sharded build");
            let scratch = ShardedScratch::for_index(&sharded);
            let mut verified = 0usize;
            let mut hits = 0usize;
            for (i, truth_row) in gt.iter().enumerate() {
                let res = sharded
                    .search_with_scratch(shard_queries.row(i), k, &scratch)
                    .unwrap();
                verified += res.verified;
                let truth: Vec<u64> = truth_row.iter().map(|&(id, _)| id).collect();
                hits += res.items.iter().filter(|it| truth.contains(&it.id)).count();
            }
            let recall = hits as f64 / (nq * k) as f64;
            let verified_avg = verified as f64 / nq as f64;
            let label = format!(
                "shards_{shards}_floor_{}",
                if floor_on { "on" } else { "off" }
            );
            println!(
                "  floor_tradeoff {label}: recall {recall:.4}, avg verified {verified_avg:.0}"
            );
            floor_rows.push((
                label,
                Json::obj(vec![
                    ("shards", Json::Num(shards as f64)),
                    (
                        "cross_shard_floor",
                        Json::Str(if floor_on { "on" } else { "off" }.into()),
                    ),
                    ("recall", Json::Num(recall)),
                    ("verified_avg", Json::Num(verified_avg)),
                ]),
            ));
        }
    }

    // --- verified_rescore: SQ8 screen+rescore on the verify path ------------
    // The verification tier screens each candidate block with `dot4_i8`
    // against the running k-th inner product (padded by the exact
    // quantization error bound) and fetches + rescores only survivors in
    // f32. Same skewed workload and shard counts as `floor_tradeoff`, tier
    // off vs on: `verified_avg` is exact f32 rows read per query (the
    // bytes the screen exists to save), `screened_fraction` is the share
    // of candidates the integer screen retired, and the items are asserted
    // bit-identical between the two builds on every query.
    let mut rescore_rows: Vec<(String, Json)> = Vec::new();
    let mut rescore_reductions: Vec<(String, Json)> = Vec::new();
    for &shards in &[4usize, 16] {
        for &floor_on in &[false, true] {
            let mut verified_by_tier = [0f64; 2];
            let mut items_off: Vec<Vec<promips_core::SearchItem>> = Vec::new();
            for (ti, &tier_on) in [false, true].iter().enumerate() {
                let base = ProMipsConfig::builder()
                    .c(0.9)
                    .p(0.5)
                    .seed(77)
                    .idistance(IDistanceConfig {
                        verify_quantize: tier_on,
                        ..Default::default()
                    })
                    .build();
                let cfg = ShardedConfig::builder()
                    .shards(shards)
                    .cross_shard_floor(floor_on)
                    .base(base)
                    .build();
                let sharded =
                    ShardedProMips::build_in_memory(&shard_data, cfg).expect("sharded build");
                let scratch = ShardedScratch::for_index(&sharded);
                let mut verified = 0usize;
                let mut screened = 0usize;
                for i in 0..nq {
                    let res = sharded
                        .search_with_scratch(shard_queries.row(i), k, &scratch)
                        .unwrap();
                    verified += res.verified;
                    screened += res.screened;
                    // The tier's contract: bit-identical top-k on vs off.
                    if tier_on {
                        assert_eq!(
                            res.items, items_off[i],
                            "screen+rescore diverged from pure-f32 verification"
                        );
                    } else {
                        items_off.push(res.items);
                    }
                }
                let query_ns = ns_per_op(|| {
                    for i in 0..nq {
                        std::hint::black_box(
                            sharded
                                .search_with_scratch(shard_queries.row(i), k, &scratch)
                                .unwrap(),
                        );
                    }
                }) / nq as f64;
                let verified_avg = verified as f64 / nq as f64;
                let screened_avg = screened as f64 / nq as f64;
                let candidates_avg = verified_avg + screened_avg;
                let screened_fraction = screened_avg / candidates_avg;
                verified_by_tier[ti] = verified_avg;
                let label = format!(
                    "shards_{shards}_floor_{}_tier_{}",
                    if floor_on { "on" } else { "off" },
                    if tier_on { "on" } else { "off" }
                );
                println!(
                    "  verified_rescore {label}: {query_ns:.0} ns/query, \
                     {verified_avg:.0} f32 rows verified, \
                     {screened_fraction:.2} screened out"
                );
                rescore_rows.push((
                    label,
                    Json::obj(vec![
                        ("shards", Json::Num(shards as f64)),
                        (
                            "cross_shard_floor",
                            Json::Str(if floor_on { "on" } else { "off" }.into()),
                        ),
                        (
                            "verify_tier",
                            Json::Str(if tier_on { "on" } else { "off" }.into()),
                        ),
                        ("us_per_query", Json::Num(query_ns / 1e3)),
                        ("verified_avg", Json::Num(verified_avg)),
                        ("screened_avg", Json::Num(screened_avg)),
                        ("screened_fraction", Json::Num(screened_fraction)),
                        ("ns_per_candidate", Json::Num(query_ns / candidates_avg)),
                    ]),
                ));
            }
            let reduction = verified_by_tier[0] / verified_by_tier[1];
            let rlabel = format!(
                "shards_{shards}_floor_{}",
                if floor_on { "on" } else { "off" }
            );
            println!("  verified_rescore {rlabel}: {reduction:.2}x fewer f32 rows verified");
            rescore_reductions.push((rlabel, Json::Num(reduction)));
        }
    }

    // --- maintenance: WAL throughput, delta drag, compaction cost -----------
    // The durable mutation lifecycle in numbers: (1) insert throughput
    // through the per-shard WAL under each group-commit policy; (2) query
    // latency as the uncompacted delta fraction grows (delta points are
    // verified exhaustively per query, so this is the drag compaction
    // removes); (3) the cost of a full compaction pass and of a whole-index
    // re-partition, the two knobs of the CompactionPolicy.
    let maint_n = 4_000usize;
    let maint_d = 32usize;
    let maint_data = promips_data::gen::norm_skewed(maint_n, maint_d, 91);
    let maint_queries = random_matrix(nq, maint_d, 93);
    let maint_base = ProMipsConfig::builder().c(0.9).p(0.5).seed(97).build();
    let bench_root =
        std::env::temp_dir().join(format!("promips-bench-maint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bench_root);

    let mut rng = Xoshiro256pp::seed_from_u64(101);
    let insert_batch: Vec<Vec<f32>> = (0..512)
        .map(|_| (0..maint_d).map(|_| rng.normal() as f32).collect())
        .collect();
    let mut insert_rows: Vec<(String, Json)> = Vec::new();
    for (label, sync) in [
        ("fsync_always", SyncPolicy::Always),
        ("fsync_every_64", SyncPolicy::EveryN(64)),
        ("fsync_never", SyncPolicy::Never),
    ] {
        let dir = bench_root.join(label);
        let cfg = ShardedConfig::builder()
            .shards(2)
            .wal_sync(sync)
            .base(maint_base.clone())
            .build();
        let idx = ShardedProMips::build_in_dir(&maint_data, cfg, &dir).expect("durable build");
        // Mutations are stateful: one timed pass over the batch (plus a
        // closing group-commit sync so policies are comparable end-to-end).
        let t = std::time::Instant::now();
        for v in &insert_batch {
            idx.insert(v).unwrap();
        }
        idx.sync_wal().unwrap();
        let ns = t.elapsed().as_nanos() as f64 / insert_batch.len() as f64;
        println!(
            "  wal_insert {label}: {ns:.0} ns/insert ({:.0} inserts/s)",
            1e9 / ns
        );
        insert_rows.push((
            label.to_string(),
            Json::obj(vec![
                ("ns_per_insert", Json::Num(ns)),
                ("inserts_per_sec", Json::Num(1e9 / ns)),
            ]),
        ));
    }

    let mut delta_rows: Vec<(String, Json)> = Vec::new();
    for &frac in &[0.0f64, 0.1, 0.25] {
        let cfg = ShardedConfig::builder()
            .shards(4)
            .base(maint_base.clone())
            .build();
        let idx = ShardedProMips::build_in_memory(&maint_data, cfg).expect("build");
        let extra = (maint_n as f64 * frac) as usize;
        for _ in 0..extra {
            let v: Vec<f32> = (0..maint_d).map(|_| rng.normal() as f32).collect();
            idx.insert(&v).unwrap();
        }
        let scratch = ShardedScratch::for_index(&idx);
        let q_ns = ns_per_op(|| {
            for i in 0..nq {
                std::hint::black_box(
                    idx.search_with_scratch(maint_queries.row(i), k, &scratch)
                        .unwrap(),
                );
            }
        }) / nq as f64;
        let label = format!("delta_{:02}pct", (frac * 100.0) as u32);
        println!("  query_vs_delta {label}: {q_ns:.0} ns/query");
        delta_rows.push((
            label,
            Json::obj(vec![
                ("delta_points", Json::Num(extra as f64)),
                ("ns_per_query", Json::Num(q_ns)),
            ]),
        ));
    }

    // Compaction pass: 25% delta + ~10% tombstones over a durable index.
    let compact_dir = bench_root.join("compact");
    let cfg = ShardedConfig::builder()
        .shards(4)
        .wal_sync(SyncPolicy::EveryN(64))
        .base(maint_base.clone())
        .build();
    let idx = ShardedProMips::build_in_dir(&maint_data, cfg, &compact_dir).expect("build");
    for _ in 0..maint_n / 4 {
        let v: Vec<f32> = (0..maint_d).map(|_| rng.normal() as f32).collect();
        idx.insert(&v).unwrap();
    }
    for gid in (0..maint_n as u64).step_by(10) {
        idx.delete(gid).unwrap();
    }
    let t = std::time::Instant::now();
    let compacted = idx.compact_all().unwrap();
    let compact_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "  compact_all: {compact_ms:.1} ms ({} shards folded)",
        compacted.len()
    );
    // Re-partition after a skewed insert burst (high norms pile into the
    // top shard; the rebalance rebuilds every shard over fresh boundaries).
    for _ in 0..maint_n / 4 {
        let v: Vec<f32> = (0..maint_d).map(|_| (rng.normal() * 8.0) as f32).collect();
        idx.insert(&v).unwrap();
    }
    let skew = idx.shard_skew();
    let t = std::time::Instant::now();
    idx.repartition().unwrap();
    let repart_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "  repartition: {repart_ms:.1} ms (skew {skew:.2} -> {:.2})",
        idx.shard_skew()
    );
    drop(idx);
    let _ = std::fs::remove_dir_all(&bench_root);

    // --- concurrent mutation: isolation + group commit in numbers -----------
    // (1) Query latency percentiles while a writer thread churns
    // inserts/deletes, with the background compactor off vs folding
    // generations underneath the readers. Queries run against MVCC
    // snapshots, so a concurrent shadow rebuild should show up as a modest
    // tail cost, never a stall. (2) WAL fsyncs per 1 000 inserts for a
    // single-insert loop vs group-committed `insert_batch`, metered by the
    // storage shim's process-wide IO counters.
    let conc_root = std::env::temp_dir().join(format!("promips-bench-conc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&conc_root);
    let conc_nq = 256usize;
    let conc_passes = 4usize;
    let conc_queries = random_matrix(conc_nq, maint_d, 95);
    let mut latency_rows: Vec<(String, Json)> = Vec::new();
    for (label, background) in [("compaction_off", false), ("compaction_background", true)] {
        let cfg = ShardedConfig::builder()
            .shards(4)
            .wal_sync(SyncPolicy::EveryN(64))
            .compaction(CompactionPolicy {
                max_delta_fraction: 0.02,
                max_tombstone_fraction: 0.02,
                min_mutations: 32,
                repartition_skew: f64::INFINITY,
            })
            .base(maint_base.clone())
            .build();
        let dir = conc_root.join(label);
        let idx = Arc::new(ShardedProMips::build_in_dir(&maint_data, cfg, &dir).expect("build"));
        let compactor = background.then(|| {
            idx.start_compactor(std::time::Duration::from_millis(2))
                .expect("spawn")
        });
        let stop = AtomicBool::new(false);
        let mut lat_ns: Vec<f64> = Vec::with_capacity(conc_passes * conc_nq);
        std::thread::scope(|s| {
            let widx = &idx;
            let stop = &stop;
            s.spawn(move || {
                let mut rng = Xoshiro256pp::seed_from_u64(103);
                while !stop.load(Ordering::Acquire) {
                    let v: Vec<f32> = (0..maint_d).map(|_| rng.normal() as f32).collect();
                    let gid = widx.insert(&v).unwrap();
                    if gid.is_multiple_of(2) {
                        let _ = widx.delete(gid);
                    }
                }
            });
            let scratch = ShardedScratch::for_index(&idx);
            for _ in 0..conc_passes {
                for i in 0..conc_nq {
                    let t = std::time::Instant::now();
                    std::hint::black_box(
                        idx.search_with_scratch(conc_queries.row(i), k, &scratch)
                            .unwrap(),
                    );
                    lat_ns.push(t.elapsed().as_nanos() as f64);
                }
            }
            stop.store(true, Ordering::Release);
        });
        if let Some(c) = compactor {
            assert!(c.stop().is_none(), "background compactor hit an IO error");
        }
        lat_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = lat_ns[lat_ns.len() / 2];
        let p99 = lat_ns[(lat_ns.len() * 99) / 100];
        println!("  concurrent_query {label}: p50 {p50:.0} ns, p99 {p99:.0} ns");
        latency_rows.push((
            label.to_string(),
            Json::obj(vec![("p50_ns", Json::Num(p50)), ("p99_ns", Json::Num(p99))]),
        ));
    }

    let burst: Vec<Vec<f32>> = (0..1000)
        .map(|_| (0..maint_d).map(|_| rng.normal() as f32).collect())
        .collect();
    let mut gc_rows: Vec<(String, Json)> = Vec::new();
    for (label, batched) in [("insert_loop", false), ("insert_batch_64", true)] {
        let cfg = ShardedConfig::builder()
            .shards(2)
            .wal_sync(SyncPolicy::Always)
            .base(maint_base.clone())
            .build();
        let dir = conc_root.join(format!("gc_{label}"));
        let idx = ShardedProMips::build_in_dir(&maint_data, cfg, &dir).expect("build");
        let before = faults::counters();
        let t = std::time::Instant::now();
        if batched {
            for chunk in burst.chunks(64) {
                idx.insert_batch(chunk.iter().map(|v| v.as_slice()))
                    .unwrap();
            }
        } else {
            for v in &burst {
                idx.insert(v).unwrap();
            }
        }
        let ins_ns = t.elapsed().as_nanos() as f64 / burst.len() as f64;
        let fsyncs = (faults::counters().fsyncs - before.fsyncs) as f64;
        let per_1k = fsyncs * 1000.0 / burst.len() as f64;
        println!("  group_commit {label}: {per_1k:.0} fsyncs/1k inserts, {ins_ns:.0} ns/insert");
        gc_rows.push((
            label.to_string(),
            Json::obj(vec![
                ("fsyncs_per_1k_inserts", Json::Num(per_1k)),
                ("ns_per_insert", Json::Num(ins_ns)),
            ]),
        ));
    }
    let _ = std::fs::remove_dir_all(&conc_root);

    // --- deadline degradation -----------------------------------------------
    // The query-lifecycle trade: latency, recall-vs-unbudgeted, and
    // outcome mix as the deadline shrinks to 100/50/25% of the unbudgeted
    // p50 on a BestEffort index, plus the shed rate when 4 threads hammer
    // an admission limit of 2 (offered load = 2× the limit).
    let dd_n = 20_000usize;
    let dd_d = 32usize;
    let dd_k = 10usize;
    let dd_nq = 32usize;
    let dd_passes = 5usize;
    println!("\ndeadline degradation ({dd_n} rows, d = {dd_d}):");
    let dd_data = promips_data::gen::norm_skewed(dd_n, dd_d, 131);
    let dd_cfg = ShardedConfig::builder()
        .shards(4)
        .degradation(DegradationPolicy::BestEffort)
        .base(ProMipsConfig::builder().c(0.9).p(0.5).seed(137).build())
        .build();
    let mut dd_idx = ShardedProMips::build_in_memory(&dd_data, dd_cfg).expect("build");
    let dd_scratch = ShardedScratch::for_index(&dd_idx);
    let dd_queries = random_matrix(dd_nq, dd_d, 139);

    // Unbudgeted baseline: per-query min latency over the passes, and the
    // reference answer recall is scored against.
    let mut base_lat = vec![f64::INFINITY; dd_nq];
    let mut base_ids: Vec<Vec<u64>> = Vec::with_capacity(dd_nq);
    for pass in 0..dd_passes {
        for (qi, lat) in base_lat.iter_mut().enumerate() {
            let t = std::time::Instant::now();
            let res = dd_idx
                .search_with_scratch(dd_queries.row(qi), dd_k, &dd_scratch)
                .unwrap();
            *lat = lat.min(t.elapsed().as_nanos() as f64);
            if pass == 0 {
                base_ids.push(res.ids());
            }
        }
    }
    let mut sorted = base_lat.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let dd_p50 = sorted[sorted.len() / 2];
    println!("  unbudgeted p50: {dd_p50:.0} ns");

    let mut dd_rows: Vec<(String, Json)> = Vec::new();
    for frac in [1.0f64, 0.5, 0.25] {
        let budget = std::time::Duration::from_nanos((dd_p50 * frac) as u64);
        let (mut ok_full, mut ok_degraded, mut deadline_hits) = (0u64, 0u64, 0u64);
        let mut recall_sum = 0.0f64;
        let mut lat: Vec<f64> = Vec::with_capacity(dd_passes * dd_nq);
        for _ in 0..dd_passes {
            for (qi, base) in base_ids.iter().enumerate() {
                let t = std::time::Instant::now();
                let out = dd_idx.search_budgeted(
                    dd_queries.row(qi),
                    dd_k,
                    &dd_scratch,
                    &QueryBudget::with_deadline(budget),
                );
                lat.push(t.elapsed().as_nanos() as f64);
                match out {
                    Ok(res) => {
                        if res.degraded {
                            ok_degraded += 1;
                        } else {
                            ok_full += 1;
                        }
                        let hits = res.ids().iter().filter(|id| base.contains(id)).count();
                        recall_sum += hits as f64 / dd_k as f64;
                    }
                    Err(QueryError::DeadlineExceeded) => deadline_hits += 1,
                    Err(e) => panic!("unexpected query error: {e}"),
                }
            }
        }
        let total = (dd_passes * dd_nq) as f64;
        let answered = ok_full + ok_degraded;
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = lat[lat.len() / 2];
        let recall = if answered > 0 {
            recall_sum / answered as f64
        } else {
            0.0
        };
        let label = format!("budget_{}pct_of_p50", (frac * 100.0) as u32);
        println!(
            "  {label}: p50 {p50:.0} ns, recall {recall:.3}, \
             {ok_full} full / {ok_degraded} degraded / {deadline_hits} expired"
        );
        dd_rows.push((
            label,
            Json::obj(vec![
                ("budget_ns", Json::Num(dd_p50 * frac)),
                ("p50_ns", Json::Num(p50)),
                ("recall_vs_unbudgeted", Json::Num(recall)),
                ("full_rate", Json::Num(ok_full as f64 / total)),
                ("degraded_rate", Json::Num(ok_degraded as f64 / total)),
                ("deadline_rate", Json::Num(deadline_hits as f64 / total)),
            ]),
        ));
    }

    // Admission shedding at 2× the limit: 4 worker threads against
    // max_in_flight = 2; a shed attempt returns `Overloaded` immediately
    // instead of queueing behind a saturated box.
    dd_idx.set_max_in_flight(2);
    let dd_idx = Arc::new(dd_idx);
    let shed_attempts_per_thread = 200usize;
    let (shed, attempted) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..4 {
            let idx = &dd_idx;
            let scratch = &dd_scratch;
            let queries = &dd_queries;
            handles.push(s.spawn(move || {
                let mut shed = 0u64;
                for i in 0..shed_attempts_per_thread {
                    let q = queries.row((w + i) % dd_nq);
                    match idx.search_budgeted(q, dd_k, scratch, &QueryBudget::unlimited()) {
                        Ok(_) => {}
                        Err(QueryError::Overloaded { .. }) => shed += 1,
                        Err(e) => panic!("unexpected query error: {e}"),
                    }
                }
                shed
            }));
        }
        let shed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        (shed, (4 * shed_attempts_per_thread) as u64)
    });
    let shed_rate = shed as f64 / attempted as f64;
    println!("  admission: {shed}/{attempted} shed at 2x limit ({shed_rate:.3})");
    drop(dd_idx);
    drop(dd_scratch);

    // --- artifact -----------------------------------------------------------
    let json = Json::obj(vec![
        ("schema", Json::Str("promips-bench-kernels-v2".into())),
        ("backend", Json::Str(backend.into())),
        ("d", Json::Num(D as f64)),
        (
            "kernels",
            Json::obj(vec![
                ("dot", pair(dot_simd, dot_scalar)),
                ("dot_single", pair(dot_single_simd, dot_single_scalar)),
                ("sq_dist", pair(sqd_simd, sqd_scalar)),
                ("sq_dist4", pair(sqd4_simd, sqd4_scalar)),
                ("sq_dist4_i8", pair(sqd4_i8_simd, sqd4_i8_scalar)),
                ("sq_norm2", pair(sqn_simd, sqn_scalar)),
                ("norm1", pair(n1_simd, n1_scalar)),
            ]),
        ),
        ("backends", Json::Obj(backend_rows.clone())),
        (
            "project",
            Json::obj(vec![
                ("single", pair(proj_simd, proj_scalar)),
                ("dataset_2000", pair(gemm_ns, gemm_scalar_ns)),
                ("m", Json::Num(M as f64)),
            ]),
        ),
        (
            "scan",
            Json::obj(vec![
                ("n", Json::Num(scan_n as f64)),
                ("m", Json::Num(scan_m as f64)),
                ("subparts", Json::Num(n_subs as f64)),
                ("arena_ns_per_record", Json::Num(arena_scan_ns)),
                ("legacy_decode_ns_per_record", Json::Num(legacy_scan_ns)),
                ("speedup", Json::Num(legacy_scan_ns / arena_scan_ns)),
            ]),
        ),
        (
            "quantized_scan",
            Json::Obj(
                vec![
                    ("n".to_string(), Json::Num(scan_n as f64)),
                    ("m".to_string(), Json::Num(scan_m as f64)),
                    ("subparts".to_string(), Json::Num(n_subs as f64)),
                ]
                .into_iter()
                .chain(quant_windows.clone())
                .collect(),
            ),
        ),
        (
            "pager_contention",
            Json::obj(vec![
                ("threads", Json::Num(4.0)),
                ("pool_pages", Json::Num(256.0)),
                ("file_pages", Json::Num(512.0)),
                ("single_mutex_ns_per_read", Json::Num(pool_1shard_ns)),
                ("striped_ns_per_read", Json::Num(pool_striped_ns)),
                ("shards", Json::Num(promips_storage::DEFAULT_SHARDS as f64)),
                ("speedup", Json::Num(pool_1shard_ns / pool_striped_ns)),
            ]),
        ),
        (
            "search",
            Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("queries", Json::Num(nq as f64)),
                ("k", Json::Num(k as f64)),
                ("threads", Json::Num(threads as f64)),
                ("sequential_ns_per_query", Json::Num(seq_ns)),
                ("batch_ns_per_query", Json::Num(batch_ns)),
                ("speedup", Json::Num(seq_ns / batch_ns)),
            ]),
        ),
        (
            "sharded_fanout",
            Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("d", Json::Num(D as f64)),
                ("queries", Json::Num(nq as f64)),
                ("k", Json::Num(k as f64)),
                ("partitioner", Json::Str("norm-range (skewed norms)".into())),
                ("per_shard_count", Json::Obj(shard_rows.clone())),
            ]),
        ),
        (
            "floor_tradeoff",
            Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("queries", Json::Num(nq as f64)),
                ("k", Json::Num(k as f64)),
                ("partitioner", Json::Str("norm-range (skewed norms)".into())),
                ("configs", Json::Obj(floor_rows.clone())),
            ]),
        ),
        (
            "verified_rescore",
            Json::obj(vec![
                ("n", Json::Num(n as f64)),
                ("queries", Json::Num(nq as f64)),
                ("k", Json::Num(k as f64)),
                ("partitioner", Json::Str("norm-range (skewed norms)".into())),
                ("configs", Json::Obj(rescore_rows.clone())),
                ("verified_reduction", Json::Obj(rescore_reductions.clone())),
            ]),
        ),
        (
            "maintenance",
            Json::obj(vec![
                ("n", Json::Num(maint_n as f64)),
                ("d", Json::Num(maint_d as f64)),
                ("insert_batch", Json::Num(insert_batch.len() as f64)),
                (
                    "insert_throughput",
                    Json::Obj(insert_rows.into_iter().collect()),
                ),
                (
                    "query_vs_delta",
                    Json::Obj(delta_rows.into_iter().collect()),
                ),
                (
                    "compaction",
                    Json::obj(vec![
                        ("compact_all_ms", Json::Num(compact_ms)),
                        ("shards_folded", Json::Num(compacted.len() as f64)),
                        ("repartition_ms", Json::Num(repart_ms)),
                        ("pre_repartition_skew", Json::Num(skew)),
                    ]),
                ),
            ]),
        ),
        (
            "concurrent_mutation",
            Json::obj(vec![
                ("n", Json::Num(maint_n as f64)),
                ("d", Json::Num(maint_d as f64)),
                ("queries", Json::Num((conc_passes * conc_nq) as f64)),
                ("k", Json::Num(k as f64)),
                (
                    "query_latency",
                    Json::Obj(latency_rows.into_iter().collect()),
                ),
                ("group_commit", Json::Obj(gc_rows.into_iter().collect())),
            ]),
        ),
        (
            "obs_overhead",
            Json::obj(vec![
                ("n", Json::Num(obs_n as f64)),
                ("d", Json::Num(obs_d as f64)),
                ("k", Json::Num(obs_k as f64)),
                ("untimed_ns_per_query", Json::Num(untimed_ns)),
                ("timed_ns_per_query", Json::Num(timed_ns)),
                ("traced_ns_per_query", Json::Num(traced_ns)),
                ("sampled_ns_per_query", Json::Num(sampled_ns)),
                ("aggregated_ns_per_query", Json::Num(aggregated_ns)),
                ("overhead_pct", Json::Num(obs_overhead_pct)),
                ("traced_overhead_pct", Json::Num(traced_overhead_pct)),
                ("sampling_overhead_pct", Json::Num(sampling_overhead_pct)),
                (
                    "aggregator_overhead_pct",
                    Json::Num(aggregator_overhead_pct),
                ),
                ("sample_every", Json::Num(64.0)),
            ]),
        ),
        (
            "windowed_metrics",
            Json::obj(vec![
                ("tick_ns", Json::Num(window_tick_ns)),
                ("window_merge_ns", Json::Num(window_merge_ns)),
                ("intervals", Json::Num(64.0)),
            ]),
        ),
        (
            "deadline_degradation",
            Json::obj(vec![
                ("n", Json::Num(dd_n as f64)),
                ("d", Json::Num(dd_d as f64)),
                ("k", Json::Num(dd_k as f64)),
                ("queries", Json::Num((dd_passes * dd_nq) as f64)),
                ("unbudgeted_p50_ns", Json::Num(dd_p50)),
                ("budgets", Json::Obj(dd_rows.clone())),
                ("max_in_flight", Json::Num(2.0)),
                ("offered_threads", Json::Num(4.0)),
                ("shed_rate_at_2x_limit", Json::Num(shed_rate)),
            ]),
        ),
    ]);

    // cargo runs bench binaries with CWD = the bench crate; anchor the
    // default artifact location at the workspace root.
    let out_path = std::env::var("PROMIPS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, json.render()).expect("write bench artifact");
    println!("\nwrote {out_path}");
    b.print("bench_kernels: dispatched vs scalar");
}
