//! Fig. 5 — overall ratio vs k (one panel per dataset, one series per
//! method).
//!
//! Expected shape (paper): all four methods above 0.95; ProMIPS the
//! highest (by up to 3%) and always above the default c = 0.9.

use promips_bench::sweep::{full_sweep_cached, metric_table};
use promips_bench::{write_csv, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = full_sweep_cached(&cfg);
    for dataset in &cfg.datasets {
        let t = metric_table(&rows, dataset, &cfg.ks, |r| r.ratio, 4);
        t.print(&format!("Fig 5: overall ratio vs k — {dataset}"));
        write_csv(&format!("fig5_overall_ratio_{dataset}"), &t);
    }
}
