//! Fig. 11 — impact of the guarantee probability p on ProMIPS
//! (p ∈ {0.3, 0.5, 0.7, 0.9} × every dataset; overall ratio and page
//! access).
//!
//! Expected shape (paper): larger p → larger searching range → higher
//! overall ratio but disproportionately more page accesses (accuracy gains
//! flatten while I/O keeps climbing).

use promips_bench::methods::build_promips;
use promips_bench::metrics::overall_ratio;
use promips_bench::report::{f, Table};
use promips_bench::{write_csv, BenchConfig, Workload};

const K: usize = 10;

fn main() {
    let cfg = BenchConfig::from_env();
    let ps = [0.3, 0.5, 0.7, 0.9];
    let headers = ["dataset", "p=0.3", "p=0.5", "p=0.7", "p=0.9"];
    let mut ratio_table = Table::new(&headers);
    let mut pages_table = Table::new(&headers);

    for spec in cfg.specs() {
        eprintln!("[fig11] {} …", spec.name);
        let w = Workload::prepare(spec, cfg.queries, K);
        let mut ratios = Vec::new();
        let mut pages = Vec::new();
        for &p in &ps {
            let built = build_promips(&w, 0.9, p, 42);
            let mut sum_ratio = 0.0;
            let mut sum_pages = 0.0;
            for qi in 0..w.dataset.queries.rows() {
                built.method.reset_stats();
                let res = built.method.search(w.dataset.queries.row(qi), K).unwrap();
                sum_pages += built.method.page_accesses() as f64;
                sum_ratio += overall_ratio(&res, &w.ground_truth[qi], K);
            }
            let nq = w.dataset.queries.rows() as f64;
            eprintln!(
                "[fig11] {} p={p}: ratio {:.4}, pages {:.1}",
                w.spec.name,
                sum_ratio / nq,
                sum_pages / nq
            );
            ratios.push(sum_ratio / nq);
            pages.push(sum_pages / nq);
        }
        ratio_table.row(
            std::iter::once(w.spec.name.to_string())
                .chain(ratios.iter().map(|&r| f(r, 4)))
                .collect(),
        );
        pages_table.row(
            std::iter::once(w.spec.name.to_string())
                .chain(pages.iter().map(|&v| f(v, 1)))
                .collect(),
        );
    }

    ratio_table.print(&format!("Fig 11(a): overall ratio vs p (k={K})"));
    write_csv("fig11a_ratio_vs_p", &ratio_table);
    pages_table.print(&format!("Fig 11(b): page access vs p (k={K})"));
    write_csv("fig11b_pages_vs_p", &pages_table);
}
