//! Criterion microbenchmarks of the hot substrate operations: 2-stable
//! projection, chi-square CDF/quantile, B+-tree point/range access, k-means
//! assignment step, Quick-Probe group location, and the vector kernels.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use promips_btree::BTree;
use promips_cluster::{kmeans, KMeansConfig};
use promips_core::quickprobe::QuickProbe;
use promips_linalg::{dot, norm1, sq_dist, Matrix};
use promips_stats::{chi2_cdf, chi2_inv_cdf, Xoshiro256pp};
use promips_storage::Pager;

fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(d, (0..n).map(|_| {
        (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()
    }))
}

fn bench_kernels(c: &mut Criterion) {
    let a: Vec<f32> = (0..300).map(|i| (i as f32 * 0.01).sin()).collect();
    let b: Vec<f32> = (0..300).map(|i| (i as f32 * 0.02).cos()).collect();
    c.bench_function("dot_300d", |bench| bench.iter(|| dot(std::hint::black_box(&a), &b)));
    c.bench_function("sq_dist_300d", |bench| bench.iter(|| sq_dist(std::hint::black_box(&a), &b)));
    c.bench_function("norm1_300d", |bench| bench.iter(|| norm1(std::hint::black_box(&a))));
}

fn bench_projection(c: &mut Criterion) {
    let proj = promips_core::projection::Projection::generate(8, 300, 1);
    let point: Vec<f32> = (0..300).map(|i| (i as f32).sin()).collect();
    c.bench_function("project_300d_to_8d", |bench| {
        bench.iter(|| proj.project(std::hint::black_box(&point)))
    });
}

fn bench_chi2(c: &mut Criterion) {
    c.bench_function("chi2_cdf_m8", |bench| {
        bench.iter(|| chi2_cdf(8, std::hint::black_box(5.3)))
    });
    c.bench_function("chi2_inv_cdf_m8", |bench| {
        bench.iter(|| chi2_inv_cdf(8, std::hint::black_box(0.5)))
    });
}

fn bench_btree(c: &mut Criterion) {
    let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
    let tree =
        BTree::bulk_load(Arc::clone(&pager), (0..100_000u64).map(|k| (k, k))).unwrap();
    c.bench_function("btree_get", |bench| {
        let mut key = 0u64;
        bench.iter(|| {
            key = (key + 7919) % 100_000;
            tree.get(std::hint::black_box(key)).unwrap()
        })
    });
    c.bench_function("btree_range_100", |bench| {
        bench.iter(|| {
            tree.range(50_000, 50_099)
                .unwrap()
                .map(|r| r.unwrap().1)
                .sum::<u64>()
        })
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let data = random_matrix(2_000, 8, 3);
    let subset: Vec<usize> = (0..2_000).collect();
    c.bench_function("kmeans_2000x8_k10", |bench| {
        bench.iter_batched(
            || KMeansConfig { k: 10, max_iters: 5, seed: 7 },
            |cfg| kmeans(&data, &subset, &cfg),
            BatchSize::SmallInput,
        )
    });
}

fn bench_quickprobe(c: &mut Criterion) {
    let proj = random_matrix(20_000, 8, 5);
    let qp = QuickProbe::build(
        8,
        (0..20_000).map(|i| (i as u64, proj.row(i))),
        |id| norm1(proj.row(id as usize)) * 3.0,
    );
    let pq: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
    c.bench_function("quickprobe_locate_20k_m8", |bench| {
        bench.iter(|| qp.locate(std::hint::black_box(&pq), 10.0, 0.9, 0.5))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels, bench_projection, bench_chi2, bench_btree, bench_kmeans, bench_quickprobe
}
criterion_main!(benches);
