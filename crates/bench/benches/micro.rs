//! Microbenchmarks of the hot substrate operations: 2-stable projection,
//! chi-square CDF/quantile, B+-tree point/range access, k-means assignment
//! step, Quick-Probe group location, and the vector kernels.
//!
//! Plain `fn main` harness (no external bench framework is available
//! offline); timing machinery lives in [`promips_bench::micro`].

use std::sync::Arc;

use promips_bench::micro::MicroBench;
use promips_btree::BTree;
use promips_cluster::{kmeans, KMeansConfig};
use promips_core::quickprobe::QuickProbe;
use promips_linalg::{dot, norm1, sq_dist, Matrix};
use promips_stats::{chi2_cdf, chi2_inv_cdf, Xoshiro256pp};
use promips_storage::Pager;

fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

fn main() {
    let mut b = MicroBench::new();
    println!("kernel backend: {}", promips_linalg::active_backend());

    // --- vector kernels -----------------------------------------------------
    let a: Vec<f32> = (0..300).map(|i| (i as f32 * 0.01).sin()).collect();
    let c: Vec<f32> = (0..300).map(|i| (i as f32 * 0.02).cos()).collect();
    b.run("dot_300d", || dot(std::hint::black_box(&a), &c));
    b.run("sq_dist_300d", || sq_dist(std::hint::black_box(&a), &c));
    b.run("norm1_300d", || norm1(std::hint::black_box(&a)));

    // --- projection ---------------------------------------------------------
    let proj = promips_core::projection::Projection::generate(8, 300, 1);
    let point: Vec<f32> = (0..300).map(|i| (i as f32).sin()).collect();
    b.run("project_300d_to_8d", || {
        proj.project(std::hint::black_box(&point))
    });
    let mut out = Vec::new();
    b.run("project_into_300d_to_8d", || {
        proj.project_into(std::hint::black_box(&point), &mut out);
        out.len()
    });

    // --- chi-square ---------------------------------------------------------
    b.run("chi2_cdf_m8", || chi2_cdf(8, std::hint::black_box(5.3)));
    b.run("chi2_inv_cdf_m8", || {
        chi2_inv_cdf(8, std::hint::black_box(0.5))
    });

    // --- B+-tree ------------------------------------------------------------
    let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
    let tree = BTree::bulk_load(Arc::clone(&pager), (0..100_000u64).map(|k| (k, k))).unwrap();
    let mut key = 0u64;
    b.run("btree_get", || {
        key = (key + 7919) % 100_000;
        tree.get(std::hint::black_box(key)).unwrap()
    });
    b.run("btree_range_100", || {
        tree.range(50_000, 50_099)
            .unwrap()
            .map(|r| r.unwrap().1)
            .sum::<u64>()
    });

    // --- k-means ------------------------------------------------------------
    let data = random_matrix(2_000, 8, 3);
    let subset: Vec<usize> = (0..2_000).collect();
    let cfg = KMeansConfig {
        k: 10,
        max_iters: 5,
        seed: 7,
    };
    b.run("kmeans_2000x8_k10", || kmeans(&data, &subset, &cfg));

    // --- Quick-Probe --------------------------------------------------------
    let qp_proj = random_matrix(20_000, 8, 5);
    let qp = QuickProbe::build(8, (0..20_000).map(|i| (i as u64, qp_proj.row(i))), |id| {
        norm1(qp_proj.row(id as usize)) * 3.0
    });
    let pq: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
    b.run("quickprobe_locate_20k_m8", || {
        qp.locate(std::hint::black_box(&pq), 10.0, 0.9, 0.5)
    });

    b.print("micro: substrate operations");
}
