//! Ablation — the new iDistance partition pattern (paper Section VI).
//!
//! Compares the two-stage pattern (rings + ksp sub-partitions) against
//! degenerate configurations: no sub-partition split (ksp = 1) and no rings
//! (Nkey = 1, closest to plain iDistance where a range query scans whole
//! annuli). Expected: the full pattern reads the fewest pages because the
//! sub-partition sphere filter discards most of each ring.

use promips_bench::metrics::overall_ratio;
use promips_bench::report::{f, Table};
use promips_bench::{write_csv, BenchConfig, Workload};
use promips_core::{ProMips, ProMipsConfig};
use promips_data::DatasetSpec;
use promips_idistance::IDistanceConfig;

const K: usize = 10;

fn main() {
    let cfg = BenchConfig::from_env();
    let w = Workload::prepare(DatasetSpec::netflix(), cfg.queries, K);

    // The scaled full pattern and its ablations with matched total
    // sub-partition counts where possible.
    let variants: Vec<(&str, IDistanceConfig)> = vec![
        (
            "rings + sub-partitions (paper)",
            promips_bench::methods::idistance_for(w.n()),
        ),
        ("rings only (ksp = 1)", {
            let mut c = promips_bench::methods::idistance_for(w.n());
            c.ksp = 1;
            c
        }),
        ("plain iDistance (Nkey = 1, ksp = 1)", {
            let mut c = promips_bench::methods::idistance_for(w.n());
            c.nkey = 1;
            c.ksp = 1;
            c
        }),
    ];

    let mut table = Table::new(&["variant", "ratio", "pages/query", "index MB", "build ms"]);
    for (name, id_cfg) in variants {
        let pconfig = ProMipsConfig {
            idistance: id_cfg,
            page_size: w.page_size(),
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let index = ProMips::build_in_memory(&w.dataset.data, pconfig).unwrap();
        let build_ms = t.elapsed().as_secs_f64() * 1e3;

        let mut sum_ratio = 0.0;
        let mut sum_pages = 0.0;
        for qi in 0..w.dataset.queries.rows() {
            let q = w.dataset.queries.row(qi);
            index.reset_stats();
            let res = index.search(q, K).unwrap();
            sum_pages += index.access_stats().logical_reads as f64;
            let neighbors: Vec<promips_baselines::Neighbor> = res
                .items
                .iter()
                .map(|i| promips_baselines::Neighbor { id: i.id, ip: i.ip })
                .collect();
            sum_ratio += overall_ratio(&neighbors, &w.ground_truth[qi], K);
        }
        let nq = w.dataset.queries.rows() as f64;
        table.row(vec![
            name.to_string(),
            f(sum_ratio / nq, 4),
            f(sum_pages / nq, 1),
            promips_bench::report::mb(index.index_size_bytes()),
            f(build_ms, 1),
        ]);
    }

    table.print("Ablation: iDistance partition pattern (Netflix, k=10)");
    write_csv("ablation_partition", &table);
}
