//! Fig. 9 — total time vs k on Netflix and Yahoo (the two datasets the
//! paper shows; run with PROMIPS_DATASETS to extend).
//!
//! Total time = CPU time + page_accesses × PROMIPS_PAGE_US. The paper reads
//! from a hard disk, so total time is I/O-dominated and ProMIPS's page-access
//! advantage translates into the best total time.

use promips_bench::sweep::{full_sweep_cached, metric_table};
use promips_bench::{write_csv, BenchConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let rows = full_sweep_cached(&cfg);
    for dataset in ["Netflix", "Yahoo"] {
        if !cfg.datasets.contains(&dataset) {
            continue;
        }
        let t = metric_table(&rows, dataset, &cfg.ks, |r| r.total_ms, 2);
        t.print(&format!(
            "Fig 9: total time (ms, disk model {} µs/page) vs k — {dataset}",
            cfg.page_us
        ));
        write_csv(&format!("fig9_total_time_{dataset}"), &t);
    }
}
