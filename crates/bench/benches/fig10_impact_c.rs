//! Fig. 10 — impact of the approximation ratio c on ProMIPS
//! (c ∈ {0.7, 0.8, 0.9} × every dataset; overall ratio and page access).
//!
//! Expected shape (paper): smaller c → smaller searching range → fewer
//! candidates → lower overall ratio and fewer page accesses; the measured
//! overall ratio stays above the configured c in every cell.

use promips_bench::methods::build_promips;
use promips_bench::metrics::overall_ratio;
use promips_bench::report::{f, Table};
use promips_bench::{write_csv, BenchConfig, Workload};
use std::time::Instant;

const K: usize = 10;

fn main() {
    let cfg = BenchConfig::from_env();
    let cs = [0.7, 0.8, 0.9];
    let mut ratio_table = Table::new(&["dataset", "c=0.7", "c=0.8", "c=0.9"]);
    let mut pages_table = Table::new(&["dataset", "c=0.7", "c=0.8", "c=0.9"]);

    for spec in cfg.specs() {
        eprintln!("[fig10] {} …", spec.name);
        let w = Workload::prepare(spec, cfg.queries, K);
        let mut ratios = Vec::new();
        let mut pages = Vec::new();
        for &c in &cs {
            let built = build_promips(&w, c, 0.5, 42);
            let mut sum_ratio = 0.0;
            let mut sum_pages = 0.0;
            let t = Instant::now();
            for qi in 0..w.dataset.queries.rows() {
                built.method.reset_stats();
                let res = built.method.search(w.dataset.queries.row(qi), K).unwrap();
                sum_pages += built.method.page_accesses() as f64;
                sum_ratio += overall_ratio(&res, &w.ground_truth[qi], K);
            }
            let nq = w.dataset.queries.rows() as f64;
            eprintln!(
                "[fig10] {} c={c}: ratio {:.4}, pages {:.1} ({:.1}s)",
                w.spec.name,
                sum_ratio / nq,
                sum_pages / nq,
                t.elapsed().as_secs_f64()
            );
            ratios.push(sum_ratio / nq);
            pages.push(sum_pages / nq);
        }
        ratio_table.row(
            std::iter::once(w.spec.name.to_string())
                .chain(ratios.iter().map(|&r| f(r, 4)))
                .collect(),
        );
        pages_table.row(
            std::iter::once(w.spec.name.to_string())
                .chain(pages.iter().map(|&p| f(p, 1)))
                .collect(),
        );
    }

    ratio_table.print(&format!("Fig 10(a): overall ratio vs c (k={K})"));
    write_csv("fig10a_ratio_vs_c", &ratio_table);
    pages_table.print(&format!("Fig 10(b): page access vs c (k={K})"));
    write_csv("fig10b_pages_vs_c", &pages_table);
}
