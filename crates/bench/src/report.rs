//! Aligned-table printing and CSV output for experiment results.

use std::fmt::Write as _;
use std::io::Write as _;

/// A simple column-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Prints the table to stdout with a heading.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Writes CSV content into `target/experiments/<name>.csv`.
pub fn write_csv(name: &str, table: &Table) {
    let dir = crate::config::BenchConfig::out_dir();
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(table.to_csv().as_bytes());
            println!("[csv] {}", path.display());
        }
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Formats a byte count as MB with two decimals (Fig. 4a's unit).
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["method", "k", "ratio"]);
        t.row(vec!["ProMIPS".into(), "10".into(), "0.99".into()]);
        t.row(vec!["H2-ALSH".into(), "100".into(), "0.97".into()]);
        let s = t.render();
        assert!(s.contains("ProMIPS"));
        assert!(s.lines().count() == 4);
        let csv = t.to_csv();
        assert!(csv.starts_with("method,k,ratio\n"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(f(0.98765, 3), "0.988");
    }
}
