//! Schema validation for the committed `BENCH_kernels.json` artifact.
//!
//! The artifact is this repository's perf-trajectory record: every perf PR
//! regenerates it and compares against the committed numbers. A PR that
//! adds a bench section but forgets to regenerate the file would silently
//! ship a stale artifact — so the required-section list lives here, a unit
//! test validates the committed file on every `cargo test`, and CI runs the
//! same check as an explicit step.
//!
//! The parser is a deliberately minimal recursive-descent JSON reader
//! (objects, arrays, strings, numbers, literals) — enough to traverse the
//! artifact's structure without an external dependency; it rejects
//! malformed input with a byte offset rather than silently accepting it.

use std::collections::BTreeMap;

/// Parsed JSON value (subset: everything the bench artifact uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`, `true`, `false` collapse to their text.
    Lit(String),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order irrelevant for validation).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Sections (and per-section fields) the committed artifact must carry.
/// Extending the bench emitter means extending this list, which forces the
/// artifact to be regenerated in the same PR.
pub const REQUIRED_SECTIONS: &[(&str, &[&str])] = &[
    ("kernels", &["dot", "sq_dist4", "sq_dist4_i8"]),
    ("backends", &["scalar"]),
    ("project", &["single", "dataset_2000"]),
    ("scan", &["arena_ns_per_record", "speedup"]),
    ("quantized_scan", &["dense", "selective"]),
    ("pager_contention", &["striped_ns_per_read"]),
    ("search", &["sequential_ns_per_query"]),
    ("sharded_fanout", &["per_shard_count"]),
    ("floor_tradeoff", &["configs"]),
    ("verified_rescore", &["configs", "verified_reduction"]),
    (
        "maintenance",
        &["insert_throughput", "query_vs_delta", "compaction"],
    ),
    ("concurrent_mutation", &["query_latency", "group_commit"]),
    (
        "obs_overhead",
        &[
            "overhead_pct",
            "traced_ns_per_query",
            "untimed_ns_per_query",
            "sampling_overhead_pct",
            "aggregator_overhead_pct",
        ],
    ),
    ("windowed_metrics", &["tick_ns", "window_merge_ns"]),
    (
        "deadline_degradation",
        &["unbudgeted_p50_ns", "budgets", "shed_rate_at_2x_limit"],
    ),
];

/// Parses a JSON document, returning the root value.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

/// Validates the artifact text against [`REQUIRED_SECTIONS`]; `Err` lists
/// every missing section/field plus any schema-string mismatch.
pub fn check_bench_schema(text: &str) -> Result<(), String> {
    let root = parse(text)?;
    let mut missing = Vec::new();
    match root.get("schema") {
        Some(Value::Str(s)) if s == "promips-bench-kernels-v2" => {}
        Some(Value::Str(s)) => {
            missing.push(format!("schema string {s:?} != promips-bench-kernels-v2"))
        }
        _ => missing.push("schema string absent".to_string()),
    }
    for &(section, fields) in REQUIRED_SECTIONS {
        match root.get(section) {
            None => missing.push(format!("section {section:?} absent")),
            Some(sec) => {
                for &f in fields {
                    if sec.get(f).is_none() {
                        missing.push(format!("section {section:?} lacks field {f:?}"));
                    }
                }
            }
        }
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing.join("; "))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_str(b, pos)?)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(_) => parse_lit(b, pos),
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", ch as char, *pos))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    // \uXXXX: the artifact never emits these; accept and
                    // keep the raw digits rather than decoding surrogates.
                    b'u' => {
                        for _ in 0..4 {
                            out.push(*b.get(*pos).ok_or("truncated \\u escape")?);
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_lit(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    for lit in ["null", "true", "false"] {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            return Ok(Value::Lit(lit.to_string()));
        }
    }
    Err(format!("unexpected token at offset {}", *pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": {"b": [1, -2.5, "x", null]}, "c": true}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap();
        assert_eq!(
            arr,
            &Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(-2.5),
                Value::Str("x".into()),
                Value::Lit("null".into()),
            ])
        );
        assert_eq!(v.get("c"), Some(&Value::Lit("true".into())));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn check_reports_missing_sections() {
        let err = check_bench_schema(r#"{"schema": "promips-bench-kernels-v2", "kernels": {}}"#)
            .unwrap_err();
        assert!(err.contains("\"quantized_scan\" absent"), "{err}");
        assert!(err.contains("lacks field \"dot\""), "{err}");
        let err = check_bench_schema(r#"{"schema": "promips-bench-kernels-v1"}"#).unwrap_err();
        assert!(err.contains("promips-bench-kernels-v2"), "{err}");
    }

    /// The committed artifact at the workspace root must satisfy the
    /// current schema — a perf PR that extends the bench emitter without
    /// regenerating `BENCH_kernels.json` fails here (and in CI).
    #[test]
    fn committed_bench_artifact_matches_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read committed {path}: {e}"));
        check_bench_schema(&text).unwrap_or_else(|e| panic!("stale {path}: {e}"));
    }
}
