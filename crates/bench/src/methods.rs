//! Method builders: construct all four evaluated methods over a workload
//! with the paper's parameter settings, recording pre-processing time and
//! index size (Fig. 4).

use std::sync::Arc;
use std::time::Instant;

use promips_baselines::h2alsh::{H2Alsh, H2AlshConfig};
use promips_baselines::pq::{PqConfig, PqMips};
use promips_baselines::rangelsh::{RangeLsh, RangeLshConfig};
use promips_baselines::{MipsMethod, ProMipsMethod};
use promips_core::{ProMips, ProMipsConfig};
use promips_idistance::IDistanceConfig;
use promips_storage::Pager;

use crate::workload::Workload;

/// A built method plus its pre-processing measurements.
pub struct BuiltMethod {
    /// The queryable method.
    pub method: Box<dyn MipsMethod>,
    /// Wall-clock build time in milliseconds (Fig. 4b).
    pub build_ms: f64,
    /// Index size in bytes (Fig. 4a).
    pub index_bytes: u64,
}

/// iDistance parameters for a dataset of `n` points.
///
/// The paper's settings (kp=5, Nkey=40, ksp=10 ⇒ µ = 1/2000) presume
/// paper-scale datasets; on scaled-down data we shrink Nkey/ksp so a
/// sub-partition still holds ≈16 points (the selectivity the paper's
/// two-stage filter is designed around). At `n ≥ 200k` this returns the
/// paper's exact settings.
pub fn idistance_for(n: usize) -> IDistanceConfig {
    if n >= 200_000 {
        return IDistanceConfig::default();
    }
    let kp = 5;
    let per_part = (n / 16 / kp).max(1); // target rings × ksp per partition
    let ksp = (per_part as f64).sqrt().round() as usize;
    let ksp = ksp.clamp(1, 10);
    let nkey = (per_part / ksp.max(1)).clamp(2, 40);
    IDistanceConfig {
        kp,
        nkey,
        ksp,
        ..Default::default()
    }
}

/// Buffer-pool pages used by every method (16 MB at 4 KB pages).
const POOL_PAGES: usize = 4096;

/// Builds ProMIPS with the paper defaults (`c`, `p` overridable).
pub fn build_promips(w: &Workload, c: f64, p: f64, seed: u64) -> BuiltMethod {
    let cfg = ProMipsConfig {
        c,
        p,
        m: None, // Section V-B optimizer (reproduces the paper's m values)
        idistance: idistance_for(w.n()),
        page_size: w.page_size(),
        pool_pages: POOL_PAGES,
        seed,
    };
    let t = Instant::now();
    let index = ProMips::build_in_memory(&w.dataset.data, cfg).expect("ProMIPS build");
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let m = ProMipsMethod::new(index);
    let index_bytes = m.index_size_bytes();
    BuiltMethod {
        method: Box::new(m),
        build_ms,
        index_bytes,
    }
}

/// Builds H2-ALSH (c0 = 2.0 per the paper).
pub fn build_h2alsh(w: &Workload, seed: u64) -> BuiltMethod {
    let pager = Arc::new(Pager::in_memory(w.page_size(), POOL_PAGES));
    let cfg = H2AlshConfig {
        seed,
        ..Default::default()
    };
    let t = Instant::now();
    let index = H2Alsh::build(&w.dataset.data, cfg, pager).expect("H2-ALSH build");
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let index_bytes = index.index_size_bytes();
    BuiltMethod {
        method: Box::new(index),
        build_ms,
        index_bytes,
    }
}

/// Builds Norm-Ranging LSH (32 partitions, 16-bit codes per the paper).
pub fn build_rangelsh(w: &Workload, seed: u64) -> BuiltMethod {
    let pager = Arc::new(Pager::in_memory(w.page_size(), POOL_PAGES));
    let cfg = RangeLshConfig {
        seed,
        ..Default::default()
    };
    let t = Instant::now();
    let index = RangeLsh::build(&w.dataset.data, cfg, pager).expect("Range-LSH build");
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let index_bytes = index.index_size_bytes();
    BuiltMethod {
        method: Box::new(index),
        build_ms,
        index_bytes,
    }
}

/// Builds the PQ-based method (16 sub-spaces × 256 centroids, 16 probed
/// cells per the paper).
pub fn build_pq(w: &Workload, seed: u64) -> BuiltMethod {
    let pager = Arc::new(Pager::in_memory(w.page_size(), POOL_PAGES));
    let cfg = PqConfig {
        seed,
        ..Default::default()
    };
    let t = Instant::now();
    let index = PqMips::build(&w.dataset.data, cfg, pager).expect("PQ build");
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let index_bytes = index.index_size_bytes();
    BuiltMethod {
        method: Box::new(index),
        build_ms,
        index_bytes,
    }
}

/// Builds all four evaluated methods in the paper's order.
pub fn build_all_methods(w: &Workload, seed: u64) -> Vec<BuiltMethod> {
    vec![
        build_promips(w, 0.9, 0.5, seed),
        build_h2alsh(w, seed ^ 0x1111),
        build_rangelsh(w, seed ^ 0x2222),
        build_pq(w, seed ^ 0x3333),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_data::DatasetSpec;

    #[test]
    fn idistance_scaling_rules() {
        let paper = idistance_for(600_000);
        assert_eq!((paper.kp, paper.nkey, paper.ksp), (5, 40, 10));
        let small = idistance_for(2_000);
        // ≈16 points per sub-partition.
        let per_sub = 2_000 / (small.kp * small.nkey * small.ksp);
        assert!(
            (4..=64).contains(&per_sub),
            "per_sub = {per_sub}, cfg {small:?}"
        );
    }

    #[test]
    fn all_methods_build_and_answer() {
        let w = Workload::prepare(DatasetSpec::netflix().with_n(600), 3, 10);
        let methods = build_all_methods(&w, 7);
        assert_eq!(methods.len(), 4);
        let names: Vec<&str> = methods.iter().map(|m| m.method.name()).collect();
        assert_eq!(names, vec!["ProMIPS", "H2-ALSH", "Range-LSH", "PQ-Based"]);
        for built in &methods {
            assert!(built.index_bytes > 0, "{}", built.method.name());
            let res = built.method.search(w.dataset.queries.row(0), 5).unwrap();
            assert!(!res.is_empty(), "{} returned nothing", built.method.name());
        }
    }
}
