//! Environment-driven experiment configuration.

use promips_data::DatasetSpec;

/// Parsed experiment configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Fraction of each paper dataset's `n` to generate.
    pub scale: f64,
    /// Queries per dataset.
    pub queries: usize,
    /// k values for the sweeps.
    pub ks: Vec<usize>,
    /// Disk model: microseconds charged per page access when deriving the
    /// Total Time metric (the paper ran on a hard disk; we model it so the
    /// I/O-dominance shape of Fig. 9 is reproducible on any hardware).
    pub page_us: f64,
    /// Which datasets to run.
    pub datasets: Vec<&'static str>,
}

impl BenchConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let scale = env_f64("PROMIPS_SCALE", 0.1).clamp(1e-4, 1.0);
        let queries = env_usize("PROMIPS_QUERIES", 100).max(1);
        let ks = std::env::var("PROMIPS_KS")
            .ok()
            .map(|s| {
                s.split(',')
                    .filter_map(|t| t.trim().parse::<usize>().ok())
                    .filter(|&k| k > 0)
                    .collect::<Vec<_>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| (1..=10).map(|i| i * 10).collect());
        let page_us = env_f64("PROMIPS_PAGE_US", 100.0).max(0.0);
        let datasets = std::env::var("PROMIPS_DATASETS")
            .ok()
            .map(|s| {
                s.split(',')
                    .filter_map(|t| match t.trim().to_ascii_lowercase().as_str() {
                        "netflix" => Some("Netflix"),
                        "yahoo" => Some("Yahoo"),
                        "p53" => Some("P53"),
                        "sift" => Some("Sift"),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec!["Netflix", "Yahoo", "P53", "Sift"]);
        Self {
            scale,
            queries,
            ks,
            page_us,
            datasets,
        }
    }

    /// The dataset specs selected by this configuration, scaled.
    ///
    /// Scaling rules per dataset keep the suite laptop-runnable:
    /// Netflix is small enough to always run at paper scale; the other
    /// three scale by `self.scale` (P53 twice as hard due to d=5408, so it
    /// gets an extra 0.5 factor).
    pub fn specs(&self) -> Vec<DatasetSpec> {
        let mut out = Vec::new();
        for name in &self.datasets {
            let spec = match *name {
                "Netflix" => DatasetSpec::netflix(), // paper scale already
                "Yahoo" => DatasetSpec::yahoo().scale(self.scale),
                "P53" => DatasetSpec::p53().scale((self.scale * 0.5).max(1e-4)),
                "Sift" => DatasetSpec::sift().scale((self.scale * 0.05).max(1e-4)),
                other => unreachable!("unknown dataset {other}"),
            };
            out.push(spec.clone());
            let _ = spec;
        }
        out
    }

    /// Experiment output directory: `<workspace>/target/experiments`
    /// (anchored at the workspace root so it is stable no matter which
    /// directory cargo runs the bench binary from).
    pub fn out_dir() -> std::path::PathBuf {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("bench crate lives two levels under the workspace root")
            .to_path_buf();
        let dir = root.join("target").join("experiments");
        let _ = std::fs::create_dir_all(&dir);
        dir
    }
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        // Do not read the real environment in tests beyond defaults.
        let cfg = BenchConfig::from_env();
        assert!(cfg.scale > 0.0 && cfg.scale <= 1.0);
        assert!(!cfg.ks.is_empty());
        assert!(!cfg.specs().is_empty());
    }
}
