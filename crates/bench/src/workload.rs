//! A generated dataset + query workload + cached ground truth.

use promips_data::{exact_topk_batch, Dataset, DatasetSpec, GroundTruth};
use promips_storage::{PAGE_SIZE_DEFAULT, PAGE_SIZE_LARGE};

/// A ready-to-run workload.
pub struct Workload {
    /// The generating spec (scaled).
    pub spec: DatasetSpec,
    /// Generated data and queries.
    pub dataset: Dataset,
    /// Exact top-`gt_k` answers per query.
    pub ground_truth: Vec<GroundTruth>,
    /// Depth of the cached ground truth.
    pub gt_k: usize,
}

impl Workload {
    /// Generates the dataset, trims the query set to `n_queries`, and
    /// computes exact top-`gt_k` ground truth (threaded).
    pub fn prepare(mut spec: DatasetSpec, n_queries: usize, gt_k: usize) -> Self {
        spec.n_queries = n_queries;
        let dataset = spec.generate();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let ground_truth = exact_topk_batch(&dataset.data, &dataset.queries, gt_k, threads);
        Self {
            spec,
            dataset,
            ground_truth,
            gt_k,
        }
    }

    /// The paper's page size for this dataset: 64 KB for P53 (one 5408-dim
    /// point does not fit a 4 KB page), 4 KB otherwise.
    pub fn page_size(&self) -> usize {
        if self.spec.name == "P53" {
            PAGE_SIZE_LARGE
        } else {
            PAGE_SIZE_DEFAULT
        }
    }

    /// n of the generated data.
    pub fn n(&self) -> usize {
        self.dataset.data.rows()
    }

    /// d of the generated data.
    pub fn d(&self) -> usize {
        self.dataset.data.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_workload() {
        let w = Workload::prepare(DatasetSpec::netflix().with_n(400), 10, 20);
        assert_eq!(w.n(), 400);
        assert_eq!(w.dataset.queries.rows(), 10);
        assert_eq!(w.ground_truth.len(), 10);
        assert_eq!(w.ground_truth[0].len(), 20);
        assert_eq!(w.page_size(), PAGE_SIZE_DEFAULT);
    }

    #[test]
    fn p53_gets_large_pages() {
        let w = Workload::prepare(DatasetSpec::p53().with_n(50).with_d(600), 2, 5);
        assert_eq!(w.page_size(), PAGE_SIZE_LARGE);
    }
}
