//! The k-sweep runner shared by Figs. 5–9: for each method and each k, run
//! every query, and record accuracy (overall ratio, recall), page accesses,
//! CPU time, and the disk-model Total Time.

use std::time::Instant;

use crate::methods::BuiltMethod;
use crate::metrics::{overall_ratio, recall};
use crate::workload::Workload;

/// One (method, k) aggregate over all queries.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Dataset display name.
    pub dataset: String,
    /// Method display name.
    pub method: String,
    /// Result size k.
    pub k: usize,
    /// Mean overall ratio over queries (Fig. 5).
    pub ratio: f64,
    /// Mean recall over queries (Fig. 6).
    pub recall: f64,
    /// Mean page accesses per query (Fig. 7).
    pub pages: f64,
    /// Mean CPU milliseconds per query (Fig. 8).
    pub cpu_ms: f64,
    /// Mean total milliseconds per query = CPU + pages·page_us (Fig. 9).
    pub total_ms: f64,
}

/// Runs the full sweep for one workload over the given methods.
///
/// Caches stay warm across queries of one method (the paper relies on the
/// OS page cache the same way); page accesses are *logical* reads, counted
/// identically for every method.
pub fn run_sweep(
    w: &Workload,
    methods: &[BuiltMethod],
    ks: &[usize],
    page_us: f64,
) -> Vec<SweepRow> {
    let nq = w.dataset.queries.rows();
    let mut rows = Vec::new();
    for built in methods {
        let method = &built.method;
        for &k in ks {
            assert!(k <= w.gt_k, "ground truth depth {} < k {k}", w.gt_k);
            let mut sum_ratio = 0.0;
            let mut sum_recall = 0.0;
            let mut sum_pages = 0.0;
            let mut sum_cpu = 0.0;
            for qi in 0..nq {
                let q = w.dataset.queries.row(qi);
                method.reset_stats();
                let t = Instant::now();
                let result = method.search(q, k).expect("search failed");
                let cpu = t.elapsed().as_secs_f64() * 1e3;
                let pages = method.page_accesses() as f64;
                let gt = &w.ground_truth[qi];
                sum_ratio += overall_ratio(&result, gt, k);
                sum_recall += recall(&result, gt, k);
                sum_pages += pages;
                sum_cpu += cpu;
            }
            let n = nq as f64;
            let pages = sum_pages / n;
            let cpu_ms = sum_cpu / n;
            rows.push(SweepRow {
                dataset: w.spec.name.to_string(),
                method: method.name().to_string(),
                k,
                ratio: sum_ratio / n,
                recall: sum_recall / n,
                pages,
                cpu_ms,
                total_ms: cpu_ms + pages * page_us / 1e3,
            });
        }
    }
    rows
}

/// Renders sweep rows for one metric as a "k × method" table per dataset
/// (matching the figures' layout: x-axis k, one series per method).
pub fn metric_table(
    rows: &[SweepRow],
    dataset: &str,
    ks: &[usize],
    metric: impl Fn(&SweepRow) -> f64,
    prec: usize,
) -> crate::report::Table {
    let methods: Vec<String> = {
        let mut seen = Vec::new();
        for r in rows.iter().filter(|r| r.dataset == dataset) {
            if !seen.contains(&r.method) {
                seen.push(r.method.clone());
            }
        }
        seen
    };
    let mut headers: Vec<&str> = vec!["k"];
    let method_names: Vec<String> = methods.clone();
    for m in &method_names {
        headers.push(m);
    }
    let mut table = crate::report::Table::new(&headers);
    for &k in ks {
        let mut cells = vec![k.to_string()];
        for m in &methods {
            let v = rows
                .iter()
                .find(|r| r.dataset == dataset && &r.method == m && r.k == k)
                .map(&metric);
            cells.push(match v {
                Some(v) => format!("{v:.prec$}"),
                None => "-".into(),
            });
        }
        table.row(cells);
    }
    table
}

/// Runs (or loads from the on-disk cache) the full Fig. 5–9 sweep: every
/// configured dataset × the four methods × the k values. The cache lives in
/// `target/experiments/` keyed by the configuration, so running the five
/// figure benches back-to-back computes the sweep once.
pub fn full_sweep_cached(cfg: &crate::config::BenchConfig) -> Vec<SweepRow> {
    let tag = format!(
        "sweep_s{}_q{}_ks{}_d{}",
        cfg.scale,
        cfg.queries,
        cfg.ks
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("-"),
        cfg.datasets.join("-"),
    );
    let path = crate::config::BenchConfig::out_dir().join(format!("{tag}.csv"));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Some(rows) = parse_rows(&text) {
            eprintln!("[sweep] loaded cached sweep from {}", path.display());
            return rows;
        }
    }

    let gt_k = cfg.ks.iter().copied().max().unwrap_or(100);
    let mut all = Vec::new();
    for spec in cfg.specs() {
        eprintln!(
            "[sweep] {}: generating n={} d={} …",
            spec.name, spec.n, spec.d
        );
        let w = Workload::prepare(spec, cfg.queries, gt_k);
        eprintln!("[sweep] {}: building 4 methods …", w.spec.name);
        let methods = crate::methods::build_all_methods(&w, 42);
        eprintln!(
            "[sweep] {}: running {} queries × {} ks …",
            w.spec.name,
            cfg.queries,
            cfg.ks.len()
        );
        all.extend(run_sweep(&w, &methods, &cfg.ks, cfg.page_us));
    }

    // Persist the cache.
    let mut csv = String::from("dataset,method,k,ratio,recall,pages,cpu_ms,total_ms\n");
    for r in &all {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.dataset, r.method, r.k, r.ratio, r.recall, r.pages, r.cpu_ms, r.total_ms
        ));
    }
    let _ = std::fs::write(&path, csv);
    all
}

fn parse_rows(text: &str) -> Option<Vec<SweepRow>> {
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 8 {
            return None;
        }
        rows.push(SweepRow {
            dataset: parts[0].to_string(),
            method: parts[1].to_string(),
            k: parts[2].parse().ok()?,
            ratio: parts[3].parse().ok()?,
            recall: parts[4].parse().ok()?,
            pages: parts[5].parse().ok()?,
            cpu_ms: parts[6].parse().ok()?,
            total_ms: parts[7].parse().ok()?,
        });
    }
    if rows.is_empty() {
        None
    } else {
        Some(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::build_promips;
    use promips_data::DatasetSpec;

    #[test]
    fn sweep_produces_rows_and_sane_metrics() {
        let w = Workload::prepare(DatasetSpec::netflix().with_n(500), 4, 20);
        let methods = vec![build_promips(&w, 0.9, 0.5, 3)];
        let rows = run_sweep(&w, &methods, &[5, 10], 100.0);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.ratio > 0.5 && r.ratio <= 1.0, "ratio {}", r.ratio);
            assert!(r.recall >= 0.0 && r.recall <= 1.0);
            assert!(r.pages > 0.0);
            assert!(r.total_ms >= r.cpu_ms);
        }
        let t = metric_table(&rows, "Netflix", &[5, 10], |r| r.ratio, 4);
        let rendered = t.render();
        assert!(rendered.contains("ProMIPS"));
    }
}
