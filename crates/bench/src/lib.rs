//! Experiment harness for the ProMIPS reproduction.
//!
//! Every table and figure of the paper's Section VIII maps to one bench
//! target in `benches/` (see DESIGN.md §4 for the index). This library
//! holds the shared machinery: scaled workloads, method builders, accuracy
//! metrics, the k-sweep runner, and table/CSV reporting.
//!
//! ## Environment knobs
//!
//! | variable | default | effect |
//! |---|---|---|
//! | `PROMIPS_SCALE` | `0.1` | fraction of each paper dataset's `n` |
//! | `PROMIPS_QUERIES` | `100` | queries per dataset (paper: 100) |
//! | `PROMIPS_KS` | `10,20,...,100` | the k sweep |
//! | `PROMIPS_PAGE_US` | `100` | disk model: µs charged per page access when deriving Total Time |
//! | `PROMIPS_DATASETS` | all | comma list among `netflix,yahoo,p53,sift` |

pub mod config;
pub mod methods;
pub mod metrics;
pub mod micro;
pub mod report;
pub mod schema;
pub mod sweep;
pub mod workload;

pub use config::BenchConfig;
pub use methods::{build_all_methods, BuiltMethod};
pub use report::{write_csv, Table};
pub use sweep::{run_sweep, SweepRow};
pub use workload::Workload;
