//! A small self-calibrating measurement harness for the kernel and
//! substrate microbenchmarks (`benches/micro.rs`, `benches/bench_kernels.rs`).
//!
//! No external benchmarking crate is available offline, so this module
//! provides the 20 lines that matter: auto-calibrated iteration counts,
//! best-of-N timing (min filters scheduler noise), aligned table output via
//! [`crate::report::Table`], and a hand-rolled JSON emitter for the
//! `BENCH_kernels.json` artifact that tracks the perf trajectory across PRs.

use std::time::Instant;

use crate::report::Table;

/// Measures `f`'s steady-state cost, returning nanoseconds per call.
///
/// Calibrates the iteration count until a rep takes ≥ 10 ms, then times
/// five reps of ~25 ms each and keeps the fastest (minimum is the standard
/// noise filter for micro-scale timings: it reads the floor under frequency
/// drift and scheduler interference).
pub fn ns_per_op<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let dt = start.elapsed().as_secs_f64();
        if dt >= 0.01 {
            let per_call = dt / iters as f64;
            let rep_iters = ((0.025 / per_call).ceil() as u64).max(1);
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let s = Instant::now();
                for _ in 0..rep_iters {
                    std::hint::black_box(f());
                }
                best = best.min(s.elapsed().as_secs_f64() / rep_iters as f64);
            }
            return best * 1e9;
        }
        iters = iters.saturating_mul(8);
    }
}

/// A named collection of microbenchmark results.
#[derive(Debug, Default)]
pub struct MicroBench {
    rows: Vec<(String, f64)>,
}

impl MicroBench {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures `f` and records it under `name` (also echoed to stdout so
    /// long runs show progress).
    pub fn run<T>(&mut self, name: &str, f: impl FnMut() -> T) -> f64 {
        let ns = ns_per_op(f);
        println!("  {name}: {ns:.1} ns/op");
        self.rows.push((name.to_string(), ns));
        ns
    }

    /// Looks up a recorded result.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns)
    }

    /// All recorded `(name, ns_per_op)` rows.
    pub fn rows(&self) -> &[(String, f64)] {
        &self.rows
    }

    /// Prints the results as an aligned table.
    pub fn print(&self, title: &str) {
        let mut t = Table::new(&["benchmark", "ns/op"]);
        for (name, ns) in &self.rows {
            t.row(vec![name.clone(), format!("{ns:.1}")]);
        }
        t.print(title);
    }
}

/// Minimal JSON value for the bench artifacts (objects, strings, numbers).
#[derive(Debug, Clone)]
pub enum Json {
    /// A float, serialized with enough precision for ns-scale readings.
    Num(f64),
    /// A string (escaped minimally; bench keys/values are ASCII).
    Str(String),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.3}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Obj(fields) => {
                out.push_str("{\n");
                let pad = "  ".repeat(depth + 1);
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\": ");
                    v.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let ns = ns_per_op(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(ns > 0.0 && ns < 1e6, "implausible ns/op {ns}");
    }

    #[test]
    fn bench_rows_and_lookup() {
        let mut b = MicroBench::new();
        b.run("a", || 1 + 1);
        assert!(b.get("a").is_some());
        assert!(b.get("missing").is_none());
        assert_eq!(b.rows().len(), 1);
    }

    #[test]
    fn json_renders() {
        let j = Json::obj(vec![
            ("name", Json::Str("dot".into())),
            ("ns", Json::Num(12.5)),
            ("nested", Json::obj(vec![("x", Json::Num(1.0))])),
        ]);
        let s = j.render();
        assert!(s.contains("\"name\": \"dot\""));
        assert!(s.contains("\"ns\": 12.500"));
        assert!(s.contains("\"x\": 1.000"));
    }
}
