//! Accuracy metrics of the paper (Section VIII-A3).

use promips_baselines::Neighbor;
use promips_data::GroundTruth;

/// Overall ratio: `(1/k)·Σᵢ ⟨oᵢ,q⟩ / ⟨o*ᵢ,q⟩` — rank-wise ratio of
/// returned to exact inner products. 1.0 is perfect; the paper's methods
/// all sit above 0.95.
///
/// Rank pairs with non-positive exact inner products are skipped (the ratio
/// is undefined there); if all are skipped the ratio is 1.0 by convention.
pub fn overall_ratio(result: &[Neighbor], exact: &GroundTruth, k: usize) -> f64 {
    let k = k.min(exact.len());
    let mut sum = 0.0;
    let mut counted = 0usize;
    for i in 0..k.min(result.len()) {
        let denom = exact[i].1;
        if denom > 0.0 {
            sum += (result[i].ip / denom).min(1.0);
            counted += 1;
        }
    }
    // Missing ranks (method returned fewer than k) count as zero.
    let missing = k.saturating_sub(result.len());
    if counted + missing == 0 {
        return 1.0;
    }
    sum / (counted + missing) as f64
}

/// Recall: `t/k` where `t` is how many returned ids are among the exact
/// top-k ids.
pub fn recall(result: &[Neighbor], exact: &GroundTruth, k: usize) -> f64 {
    let k = k.min(exact.len());
    if k == 0 {
        return 1.0;
    }
    let exact_ids: std::collections::HashSet<u64> = exact[..k].iter().map(|&(id, _)| id).collect();
    let hits = result
        .iter()
        .take(k)
        .filter(|n| exact_ids.contains(&n.id))
        .count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(id: u64, ip: f64) -> Neighbor {
        Neighbor { id, ip }
    }

    #[test]
    fn perfect_result_scores_one() {
        let exact: GroundTruth = vec![(1, 10.0), (2, 8.0), (3, 6.0)];
        let result = vec![nb(1, 10.0), nb(2, 8.0), nb(3, 6.0)];
        assert_eq!(overall_ratio(&result, &exact, 3), 1.0);
        assert_eq!(recall(&result, &exact, 3), 1.0);
    }

    #[test]
    fn approximate_result_scores_partial() {
        let exact: GroundTruth = vec![(1, 10.0), (2, 8.0)];
        let result = vec![nb(5, 9.0), nb(2, 8.0)];
        let r = overall_ratio(&result, &exact, 2);
        assert!((r - (0.9 + 1.0) / 2.0).abs() < 1e-12);
        assert_eq!(recall(&result, &exact, 2), 0.5);
    }

    #[test]
    fn short_result_penalized() {
        let exact: GroundTruth = vec![(1, 10.0), (2, 8.0), (3, 6.0), (4, 5.0)];
        let result = vec![nb(1, 10.0)];
        let r = overall_ratio(&result, &exact, 4);
        assert!((r - 0.25).abs() < 1e-12);
        assert_eq!(recall(&result, &exact, 4), 0.25);
    }

    #[test]
    fn non_positive_exact_ips_skipped() {
        let exact: GroundTruth = vec![(1, 5.0), (2, -1.0)];
        let result = vec![nb(1, 5.0), nb(2, -1.0)];
        assert_eq!(overall_ratio(&result, &exact, 2), 1.0);
    }

    #[test]
    fn ratio_capped_at_one() {
        // A returned ip can exceed the same-rank exact ip (different
        // point); the per-rank ratio is capped so the aggregate stays ≤ 1.
        let exact: GroundTruth = vec![(1, 10.0), (2, 1.0)];
        let result = vec![nb(1, 10.0), nb(9, 9.0)];
        assert!(overall_ratio(&result, &exact, 2) <= 1.0);
    }
}
