//! Lloyd's algorithm with k-means++ seeding and empty-cluster repair.

use promips_linalg::{add_scaled, sq_dist, Matrix};
use promips_stats::Xoshiro256pp;

use crate::seed::kmeanspp_indices;

/// Configuration for a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when no assignment changes (always also honoured).
    pub seed: u64,
}

impl KMeansConfig {
    /// A sensible default: `max_iters = 25`.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k,
            max_iters: 25,
            seed,
        }
    }
}

/// Output of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `k × d` centroid matrix.
    pub centroids: Matrix,
    /// For each input index position, the assigned cluster in `0..k`.
    pub assignment: Vec<u32>,
    /// Per-cluster member counts.
    pub sizes: Vec<usize>,
    /// Per-cluster radius: max distance from a member to its centroid.
    /// (iDistance partitions use this to filter spheres.)
    pub radii: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Members of each cluster as index lists **into the subset given to
    /// [`kmeans`]** (positions, not original row ids).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.centroids.rows()];
        for (pos, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(pos);
        }
        out
    }
}

/// Runs k-means over `subset` (row indices into `data`).
///
/// If `subset.len() < k`, the effective `k` is reduced to the subset size so
/// every centroid is a real point — this happens routinely for tiny rings in
/// iDistance's second clustering stage.
pub fn kmeans(data: &Matrix, subset: &[usize], config: &KMeansConfig) -> KMeansResult {
    assert!(!subset.is_empty(), "kmeans on empty subset");
    let k = config.k.min(subset.len()).max(1);
    let d = data.cols();
    let mut rng = Xoshiro256pp::seed_from_u64(config.seed);

    // Seed with k-means++ and materialize centroid vectors.
    let seeds = kmeanspp_indices(data, subset, k, &mut rng);
    let mut centroids = Matrix::from_rows(d, seeds.iter().map(|&i| data.row(i).to_vec()));

    let mut assignment = vec![0u32; subset.len()];
    let mut iterations = 0;
    for iter in 0..config.max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (pos, &row) in subset.iter().enumerate() {
            let point = data.row(row);
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_dist(point, centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best = c as u32;
                }
            }
            if assignment[pos] != best {
                assignment[pos] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }

        // Update step with f64 accumulators.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (pos, &row) in subset.iter().enumerate() {
            let c = assignment[pos] as usize;
            add_scaled(&mut sums[c], 1.0, data.row(row));
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty-cluster repair: re-seed from the point farthest from
                // its assigned centroid.
                let (far_pos, _) = subset
                    .iter()
                    .enumerate()
                    .map(|(pos, &row)| {
                        (
                            pos,
                            sq_dist(data.row(row), centroids.row(assignment[pos] as usize)),
                        )
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("subset non-empty");
                let row = subset[far_pos];
                centroids.row_mut(c).copy_from_slice(data.row(row));
                assignment[far_pos] = c as u32;
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in centroids.row_mut(c).iter_mut().zip(&sums[c]) {
                    *dst = (s * inv) as f32;
                }
            }
        }
    }

    // Final statistics.
    let mut sizes = vec![0usize; k];
    let mut radii = vec![0.0f64; k];
    for (pos, &row) in subset.iter().enumerate() {
        let c = assignment[pos] as usize;
        sizes[c] += 1;
        let dist = sq_dist(data.row(row), centroids.row(c)).sqrt();
        if dist > radii[c] {
            radii[c] = dist;
        }
    }

    KMeansResult {
        centroids,
        assignment,
        sizes,
        radii,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f32, f32)], per: usize, spread: f32, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut rows = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per {
                rows.push(vec![
                    cx + spread * rng.normal() as f32,
                    cy + spread * rng.normal() as f32,
                ]);
            }
        }
        Matrix::from_rows(2, rows)
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs(&[(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)], 40, 0.5, 3);
        let subset: Vec<usize> = (0..data.rows()).collect();
        let res = kmeans(&data, &subset, &KMeansConfig::new(3, 7));
        assert_eq!(res.centroids.rows(), 3);
        assert_eq!(res.sizes.iter().sum::<usize>(), 120);
        // Each blob maps to exactly one cluster.
        for blob in 0..3 {
            let first = res.assignment[blob * 40];
            for i in 0..40 {
                assert_eq!(res.assignment[blob * 40 + i], first, "blob {blob} split");
            }
        }
        // Cluster sizes are the blob sizes.
        let mut sizes = res.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![40, 40, 40]);
    }

    #[test]
    fn radii_cover_members() {
        let data = blobs(&[(0.0, 0.0), (30.0, 30.0)], 50, 2.0, 11);
        let subset: Vec<usize> = (0..data.rows()).collect();
        let res = kmeans(&data, &subset, &KMeansConfig::new(2, 5));
        for (pos, &row) in subset.iter().enumerate() {
            let c = res.assignment[pos] as usize;
            let d = sq_dist(data.row(row), res.centroids.row(c)).sqrt();
            assert!(d <= res.radii[c] + 1e-9);
        }
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let data = blobs(&[(0.0, 0.0)], 3, 0.1, 1);
        let subset: Vec<usize> = (0..3).collect();
        let res = kmeans(&data, &subset, &KMeansConfig::new(10, 1));
        assert_eq!(res.centroids.rows(), 3);
        assert_eq!(res.assignment.len(), 3);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = Matrix::from_rows(1, vec![vec![0.0f32], vec![2.0], vec![4.0]]);
        let subset: Vec<usize> = (0..3).collect();
        let res = kmeans(&data, &subset, &KMeansConfig::new(1, 2));
        assert!((res.centroids.row(0)[0] - 2.0).abs() < 1e-6);
        assert_eq!(res.sizes, vec![3]);
        assert!((res.radii[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn works_on_subset_positions() {
        let data = blobs(&[(0.0, 0.0), (100.0, 100.0)], 10, 0.1, 4);
        // Only cluster the second blob.
        let subset: Vec<usize> = (10..20).collect();
        let res = kmeans(&data, &subset, &KMeansConfig::new(2, 4));
        assert_eq!(res.assignment.len(), 10);
        // Centroids must be near (100, 100).
        for c in 0..res.centroids.rows() {
            assert!(res.centroids.row(c)[0] > 90.0);
        }
    }

    #[test]
    fn members_partition_positions() {
        let data = blobs(&[(0.0, 0.0), (9.0, 9.0)], 25, 1.0, 6);
        let subset: Vec<usize> = (0..50).collect();
        let res = kmeans(&data, &subset, &KMeansConfig::new(4, 8));
        let members = res.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 50);
        let mut all: Vec<usize> = members.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(&[(0.0, 0.0), (20.0, 0.0)], 30, 1.0, 9);
        let subset: Vec<usize> = (0..60).collect();
        let a = kmeans(&data, &subset, &KMeansConfig::new(2, 42));
        let b = kmeans(&data, &subset, &KMeansConfig::new(2, 42));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }
}
