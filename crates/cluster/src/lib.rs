//! k-means clustering.
//!
//! iDistance's partition pattern (Section VI of the ProMIPS paper) is a
//! two-stage clustering: `kp`-means over the projected points yields the
//! partitions, and within every ring the point set is further divided into
//! `ksp` sub-partitions by another k-means. The PQ-based baseline reuses the
//! same Lloyd iterations for its coarse quantizer and sub-space codebooks.

pub mod kmeans;
pub mod seed;

pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
