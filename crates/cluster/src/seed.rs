//! k-means++ seeding (Arthur & Vassilvitskii, 2007).

use promips_linalg::{sq_dist, Matrix};
use promips_stats::Xoshiro256pp;

/// Picks `k` initial centroids with the k-means++ D² weighting: the first
/// centroid is uniform, each subsequent one is drawn with probability
/// proportional to its squared distance from the nearest centroid chosen so
/// far. Returns centroid row indices into `data` (distinct).
pub fn kmeanspp_indices(
    data: &Matrix,
    subset: &[usize],
    k: usize,
    rng: &mut Xoshiro256pp,
) -> Vec<usize> {
    assert!(k >= 1, "k must be >= 1");
    assert!(
        subset.len() >= k,
        "cannot pick {k} centroids from {} points",
        subset.len()
    );

    let mut chosen = Vec::with_capacity(k);
    let first = subset[rng.below(subset.len() as u64) as usize];
    chosen.push(first);

    // d2[i] = squared distance of subset[i] to nearest chosen centroid.
    let mut d2: Vec<f64> = subset
        .iter()
        .map(|&i| sq_dist(data.row(i), data.row(first)))
        .collect();

    while chosen.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with chosen centroids; pick any
            // not-yet-chosen point to keep the centroid count.
            subset
                .iter()
                .copied()
                .find(|i| !chosen.contains(i))
                .unwrap_or(subset[0])
        } else {
            let mut target = rng.uniform() * total;
            let mut pick = subset.len() - 1;
            for (j, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    pick = j;
                    break;
                }
            }
            subset[pick]
        };
        chosen.push(next);
        for (j, &i) in subset.iter().enumerate() {
            let d = sq_dist(data.row(i), data.row(next));
            if d < d2[j] {
                d2[j] = d;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> Matrix {
        // 3 well-separated blobs on a line.
        let mut rows = Vec::new();
        for center in [0.0f32, 100.0, 200.0] {
            for i in 0..20 {
                rows.push(vec![center + (i % 5) as f32 * 0.1, center]);
            }
        }
        Matrix::from_rows(2, rows)
    }

    #[test]
    fn picks_k_distinct_rows() {
        let data = grid_data();
        let subset: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let picks = kmeanspp_indices(&data, &subset, 3, &mut rng);
        assert_eq!(picks.len(), 3);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "picks must be distinct: {picks:?}");
    }

    #[test]
    fn spreads_across_blobs() {
        let data = grid_data();
        let subset: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let picks = kmeanspp_indices(&data, &subset, 3, &mut rng);
        // One pick per blob, overwhelmingly likely given the separation.
        let mut blobs: Vec<usize> = picks.iter().map(|&i| i / 20).collect();
        blobs.sort_unstable();
        assert_eq!(blobs, vec![0, 1, 2], "picks {picks:?}");
    }

    #[test]
    fn handles_duplicate_points() {
        let data = Matrix::from_rows(1, (0..10).map(|_| vec![1.0f32]));
        let subset: Vec<usize> = (0..10).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let picks = kmeanspp_indices(&data, &subset, 3, &mut rng);
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn works_on_subset() {
        let data = grid_data();
        let subset: Vec<usize> = (0..20).collect(); // first blob only
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let picks = kmeanspp_indices(&data, &subset, 2, &mut rng);
        assert!(picks.iter().all(|&i| i < 20));
    }
}
