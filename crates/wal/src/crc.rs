//! CRC32 (IEEE 802.3 polynomial, the zlib/gzip variant) — the record
//! checksum of the write-ahead log. Table-driven, one table computed at
//! first use; no external dependency.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC32 of `bytes` (initial value and final xor both `0xFFFF_FFFF`, as in
/// zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut buf = vec![0xA5u8; 64];
        let base = crc32(&buf);
        for i in 0..buf.len() {
            for bit in 0..8 {
                buf[i] ^= 1 << bit;
                assert_ne!(crc32(&buf), base, "flip at byte {i} bit {bit} undetected");
                buf[i] ^= 1 << bit;
            }
        }
    }
}
