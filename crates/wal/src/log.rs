//! The log itself: append, group commit, streaming replay-on-open with
//! torn-tail truncation, and crash-safe post-compaction rewrite.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use promips_obs::{recorder, CounterId, HistoId, Registry};
use promips_storage::durability::{
    faults::{self, IoOp},
    fsync_dir, rename,
    retry::{self, RetryPolicy},
    sync_file_data, tmp_sibling,
};

use crate::crc::crc32;
use crate::record::WalRecord;

const WAL_MAGIC: u64 = 0x5AA2_D1CE_3A70_0001;
const WAL_VERSION: u64 = 1;
/// magic + version + dimensionality.
pub(crate) const HEADER_BYTES: u64 = 24;
/// len prefix + crc.
const RECORD_HEADER: usize = 8;
/// Replay window: records are parsed out of a sliding buffer of roughly
/// this many bytes instead of materializing the whole log. A single
/// record larger than the window (very high-dimensional vectors) still
/// replays — the window grows to that record's size and shrinks back via
/// the next compaction of the buffer.
const REPLAY_CHUNK: usize = 256 * 1024;

/// When appends reach durable media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every append — nothing acknowledged is ever lost.
    #[default]
    Always,
    /// Group commit: `fsync` once per `n` appends (and on explicit
    /// [`Wal::sync`]). A crash loses at most the last `n − 1` mutations.
    EveryN(u32),
    /// Never sync implicitly; the OS flushes when it pleases. For
    /// measurement and bulk loads followed by an explicit [`Wal::sync`].
    Never,
}

/// Log configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalConfig {
    /// Group-commit knob (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
}

/// An open write-ahead log for one shard.
///
/// The in-memory state tracks the byte length of the *complete-record
/// prefix*; appends go exactly there, so a previous torn tail (already
/// truncated by [`Wal::open`]) can never resurface.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    d: usize,
    config: WalConfig,
    /// End of the last complete record (file offset appends write at).
    len_bytes: u64,
    records: u64,
    /// Appends since the last sync (group-commit counter).
    unsynced: u32,
    /// Reusable encode buffer.
    buf: Vec<u8>,
}

impl Wal {
    /// Creates a fresh (empty) log for vectors of dimensionality `d`,
    /// fsyncing the header and the parent directory so the file itself
    /// survives a crash.
    pub fn create(path: impl AsRef<Path>, d: usize, config: WalConfig) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&(d as u64).to_le_bytes());
        // A fresh (truncated) file: rewriting the header from offset 0
        // after a transient failure is idempotent, and fsync always is.
        retry::retry_io(&RetryPolicy::default(), || {
            faults::check(IoOp::Write, &path)?;
            file.write_all_at(&header, 0)?;
            sync_file_data(&file, &path)
        })?;
        sync_parent(&path)?;
        Ok(Self {
            file,
            path,
            d,
            config,
            len_bytes: HEADER_BYTES,
            records: 0,
            unsynced: 0,
            buf: Vec::new(),
        })
    }

    /// Opens an existing log and streams its records, in append order, into
    /// `apply` — one call per complete record, parsed out of a bounded
    /// sliding window (see [`REPLAY_CHUNK`]) so replay memory does not grow
    /// with log size. Everything from the first incomplete or corrupt
    /// record onward — an incomplete length prefix, an incomplete payload,
    /// or a CRC mismatch — is truncated off the file, so the log is clean
    /// for subsequent appends. An error from `apply` aborts the open.
    ///
    /// This is **point-in-time recovery** (the same choice RocksDB's
    /// default WAL mode and SQLite's WAL replay make): recovery never
    /// extends past the first bad record, even if parseable bytes follow
    /// it. The alternative — erroring out when valid records appear after
    /// a gap — would brick legitimately crashed logs: under group commit
    /// the OS may persist the unsynced window's pages out of order, so a
    /// crash can leave a later record intact behind a hole, and such a log
    /// must still open. The cost is that mid-file bit-rot in an already
    /// fsynced region also truncates the records behind it; logs are kept
    /// short by compaction, which bounds that exposure.
    pub fn open_streaming(
        path: impl AsRef<Path>,
        config: WalConfig,
        mut apply: impl FnMut(WalRecord) -> io::Result<()>,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        // Replay is a read path: consult the fault shim once per open so
        // recovery tests can fail a shard's WAL at its most fragile
        // moment.
        faults::check(IoOp::Read, &path)?;
        let file_len = file.metadata()?.len();

        if file_len < HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("WAL {} shorter than its header", path.display()),
            ));
        }
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact_at(&mut header, 0)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
        let version = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let d = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
        if magic != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad WAL magic in {}", path.display()),
            ));
        }
        if version != WAL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported WAL version {version}"),
            ));
        }

        let mut win = Window {
            file: &file,
            file_len,
            base: HEADER_BYTES,
            buf: Vec::new(),
            pos: 0,
        };
        let mut records = 0u64;
        let mut good_end = HEADER_BYTES;
        loop {
            // First failure of any kind ends the scan (see the doc comment
            // on point-in-time recovery): records are never skipped over.
            if !win.ensure(RECORD_HEADER)? {
                break; // partial length prefix
            }
            let hdr = win.peek(RECORD_HEADER);
            let len = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes"));
            // Checking against the file's remaining bytes *before* asking
            // the window for them keeps a garbage length prefix from
            // ballooning the buffer.
            if len == 0 || !win.ensure(RECORD_HEADER + len)? {
                break; // partial payload (or nonsense length running past EOF)
            }
            let payload = &win.peek(RECORD_HEADER + len)[RECORD_HEADER..];
            if crc32(payload) != crc {
                break; // half-flushed sector
            }
            let rec = match WalRecord::decode_payload(payload, d) {
                Ok(r) => r,
                Err(_) => break, // checksummed but undecodable ⇒ treat as tail
            };
            win.advance(RECORD_HEADER + len);
            good_end = win.offset();
            records += 1;
            apply(rec)?;
        }

        if good_end != file_len {
            // Drop the torn tail so the next append starts on a record
            // boundary. Sync: the truncation itself must be durable, or a
            // second crash could resurrect garbage past our append point.
            file.set_len(good_end)?;
            sync_file_data(&file, &path)?;
        }
        Registry::global()
            .counter(CounterId::WalReplayedRecords)
            .add(records);
        let torn_bytes = file_len - good_end;
        if records > 0 || torn_bytes > 0 {
            recorder::emit(recorder::EventKind::WalReplayed {
                records,
                torn_bytes,
            });
        }

        Ok(Self {
            file,
            path,
            d,
            config,
            len_bytes: good_end,
            records,
            unsynced: 0,
            buf: Vec::new(),
        })
    }

    /// [`Wal::open_streaming`] collecting the replayed records into a
    /// `Vec` — convenient for tests and callers that want the whole log.
    pub fn open(path: impl AsRef<Path>, config: WalConfig) -> io::Result<(Self, Vec<WalRecord>)> {
        let mut records = Vec::new();
        let wal = Self::open_streaming(path, config, |rec| {
            records.push(rec);
            Ok(())
        })?;
        Ok((wal, records))
    }

    /// Opens `path` if it exists (streaming records into `apply`),
    /// otherwise creates a fresh log.
    pub fn open_or_create_streaming(
        path: impl AsRef<Path>,
        d: usize,
        config: WalConfig,
        apply: impl FnMut(WalRecord) -> io::Result<()>,
    ) -> io::Result<Self> {
        if path.as_ref().exists() {
            let wal = Self::open_streaming(path, config, apply)?;
            if wal.d != d {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("WAL dimensionality {} != index {d}", wal.d),
                ));
            }
            Ok(wal)
        } else {
            Self::create(path, d, config)
        }
    }

    /// Opens `path` if it exists, otherwise creates a fresh log. The replay
    /// vector is empty for a fresh log.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        d: usize,
        config: WalConfig,
    ) -> io::Result<(Self, Vec<WalRecord>)> {
        let mut records = Vec::new();
        let wal = Self::open_or_create_streaming(path, d, config, |rec| {
            records.push(rec);
            Ok(())
        })?;
        Ok((wal, records))
    }

    /// Appends one record, honouring the group-commit policy. The record is
    /// on disk (modulo the policy's sync debt) when this returns; apply it
    /// to in-memory state only afterwards — that ordering is what makes the
    /// log *write-ahead*.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.append_with_sync(record, true)
    }

    /// Appends one record, optionally deferring the policy sync. Cross-shard
    /// group commit uses `sync_now = false` to write a burst spanning many
    /// logs and then pay one [`Wal::sync`] round at the end — one fsync per
    /// *touched log* instead of one per record. Callers that defer **must
    /// not acknowledge** the mutation until the closing sync returns.
    pub fn append_with_sync(&mut self, record: &WalRecord, sync_now: bool) -> io::Result<()> {
        if let WalRecord::Insert { vector, .. } = record {
            assert_eq!(
                vector.len(),
                self.d,
                "WAL dimensionality mismatch: record {} vs log {}",
                vector.len(),
                self.d
            );
        }
        self.buf.clear();
        encode_record(&mut self.buf, record, self.d);
        // Retry scope: the write targets a fixed offset and `len_bytes`
        // has not advanced yet, so re-running it after a transient
        // failure is idempotent — the record is not acknowledged (and not
        // counted) until the write sticks. Retrying the *whole* append
        // would not be: a sync failure after a successful write must not
        // duplicate the record.
        {
            let (file, path, buf, off) = (&self.file, &self.path, &self.buf, self.len_bytes);
            retry::retry_io(&RetryPolicy::default(), || {
                faults::check(IoOp::Write, path)?;
                file.write_all_at(buf, off)
            })?;
        }
        self.len_bytes += self.buf.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        Registry::global().counter(CounterId::WalAppends).inc();
        if sync_now {
            match self.config.sync {
                SyncPolicy::Always => self.sync()?,
                SyncPolicy::EveryN(n) => {
                    if self.unsynced >= n.max(1) {
                        self.sync()?;
                    }
                }
                SyncPolicy::Never => {}
            }
        }
        Ok(())
    }

    /// Forces everything appended so far to durable media.
    pub fn sync(&mut self) -> io::Result<()> {
        // fsync is idempotent, so a transient failure retries cleanly.
        retry::retry_io(&RetryPolicy::default(), || {
            sync_file_data(&self.file, &self.path)
        })?;
        let reg = Registry::global();
        reg.counter(CounterId::WalSyncs).inc();
        if self.unsynced > 0 {
            // Group-commit effectiveness: how many appends this sync
            // point amortized (no-debt syncs would flood bucket 0).
            reg.histogram(HistoId::WalGroupCommitBatch)
                .record(self.unsynced as u64);
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Empties the log (keeps the header). Called **after** a compaction's
    /// manifest swap has landed — at that point the records are folded into
    /// the new generation and replaying them would resurrect dead state.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(HEADER_BYTES)?;
        sync_file_data(&self.file, &self.path)?;
        self.len_bytes = HEADER_BYTES;
        self.records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Atomically replaces the log's on-disk contents with exactly
    /// `records`: a new file (header + records) is written next to the log,
    /// fsynced, and renamed over it. A crash at any point leaves either the
    /// old complete log or the new one — never a partial rewrite — which is
    /// what lets a compaction commit shrink the log to its *unfolded
    /// suffix* (mutations that arrived while the shadow build ran) without
    /// a window where acknowledged records exist nowhere on disk.
    ///
    /// On success the handle continues on the new file (the renamed inode);
    /// the records are already durable, so the sync debt resets.
    pub fn rewrite(&mut self, records: &[WalRecord]) -> io::Result<()> {
        let tmp = tmp_sibling(&self.path);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        self.buf.clear();
        self.buf.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        self.buf.extend_from_slice(&WAL_VERSION.to_le_bytes());
        self.buf.extend_from_slice(&(self.d as u64).to_le_bytes());
        for record in records {
            if let WalRecord::Insert { vector, .. } = record {
                assert_eq!(
                    vector.len(),
                    self.d,
                    "WAL dimensionality mismatch: record {} vs log {}",
                    vector.len(),
                    self.d
                );
            }
            encode_record(&mut self.buf, record, self.d);
        }
        // The tmp file is private until the rename, so rewriting it from
        // offset 0 after a transient failure is idempotent.
        {
            let buf = &self.buf;
            retry::retry_io(&RetryPolicy::default(), || {
                faults::check(IoOp::Write, &tmp)?;
                file.write_all_at(buf, 0)?;
                sync_file_data(&file, &tmp)
            })?;
        }
        rename(&tmp, &self.path)?;
        // The fd follows the inode across the rename, so the handle is
        // already on the new log; swap it *before* the directory sync so an
        // error there cannot strand appends on the unlinked old inode.
        self.file = file;
        self.len_bytes = self.buf.len() as u64;
        self.records = records.len() as u64;
        self.unsynced = 0;
        self.buf.clear();
        sync_parent(&self.path)?;
        Ok(())
    }

    /// Number of complete records in the log.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Bytes of complete records + header (the operator-facing "how big is
    /// my WAL" number; compaction policies feed on it).
    pub fn size_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Appends not yet covered by an fsync (sync debt of the group-commit
    /// policy).
    pub fn unsynced_appends(&self) -> u32 {
        self.unsynced
    }

    /// Vector dimensionality the log was created with.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Encodes `record` (header + checksummed payload) onto the end of `buf`.
fn encode_record(buf: &mut Vec<u8>, record: &WalRecord, d: usize) {
    let payload_len = record.payload_len(d);
    let start = buf.len();
    buf.reserve(RECORD_HEADER + payload_len);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // crc placeholder
    record.encode_payload(buf);
    debug_assert_eq!(buf.len() - start, RECORD_HEADER + payload_len);
    let crc = crc32(&buf[start + RECORD_HEADER..]);
    buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// A bounded sliding window over the record region of a log file: at most
/// ~[`REPLAY_CHUNK`] bytes buffered (more only while a single record is
/// larger than that), refilled on demand as the parse cursor advances.
struct Window<'a> {
    file: &'a File,
    file_len: u64,
    /// File offset of `buf[0]`.
    base: u64,
    buf: Vec<u8>,
    /// Parse cursor within `buf`.
    pos: usize,
}

impl Window<'_> {
    /// File offset of the parse cursor.
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Makes at least `n` bytes available at the cursor, reading more of
    /// the file if needed; `false` when the file has fewer than `n` bytes
    /// left (a torn tail).
    fn ensure(&mut self, n: usize) -> io::Result<bool> {
        if self.file_len - self.offset() < n as u64 {
            return Ok(false);
        }
        if self.buf.len() - self.pos >= n {
            return Ok(true);
        }
        // Slide: drop parsed bytes, then top the buffer up to the chunk
        // size (or `n`, if one record overflows it).
        self.buf.drain(..self.pos);
        self.base += self.pos as u64;
        self.pos = 0;
        let have = self.buf.len();
        let tail = (self.file_len - self.base) as usize - have;
        let add = n.max(REPLAY_CHUNK).saturating_sub(have).min(tail);
        self.buf.resize(have + add, 0);
        self.file
            .read_exact_at(&mut self.buf[have..], self.base + have as u64)?;
        Ok(self.buf.len() >= n)
    }

    /// The next `n` buffered bytes (call [`Window::ensure`] first).
    fn peek(&self, n: usize) -> &[u8] {
        &self.buf[self.pos..self.pos + n]
    }

    /// Consumes `n` parsed bytes.
    fn advance(&mut self, n: usize) {
        self.pos += n;
    }
}

/// Fsyncs the directory containing `path` (rename/create durability).
fn sync_parent(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("promips-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    fn sample_records(d: usize) -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 100,
                vector: (0..d).map(|i| i as f32 * 0.5).collect(),
            },
            WalRecord::Delete { id: 7 },
            WalRecord::Insert {
                id: 101,
                vector: (0..d).map(|i| -(i as f32)).collect(),
            },
            WalRecord::Delete { id: 100 },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let recs = sample_records(6);
        {
            let mut wal = Wal::create(&path, 6, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
            assert_eq!(wal.record_count(), 4);
        }
        let (wal, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs);
        assert_eq!(wal.record_count(), 4);
        assert_eq!(wal.d(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_continue_after_reopen() {
        let path = temp_path("continue");
        let recs = sample_records(3);
        {
            let mut wal = Wal::create(&path, 3, WalConfig::default()).unwrap();
            for r in &recs[..2] {
                wal.append(r).unwrap();
            }
        }
        {
            let (mut wal, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
            assert_eq!(replayed.len(), 2);
            for r in &recs[2..] {
                wal.append(r).unwrap();
            }
        }
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs);
        std::fs::remove_file(&path).unwrap();
    }

    /// The crash-safety torture test of the issue: truncate the log at
    /// every byte offset inside (and around) the final record; replay must
    /// recover exactly the prefix of complete records — never panic, never
    /// invent a record, never lose an earlier one.
    #[test]
    fn torn_tail_truncated_at_every_byte_offset() {
        let path = temp_path("torture");
        let recs = sample_records(5);
        {
            let mut wal = Wal::create(&path, 5, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Byte length of each record as laid out in the file.
        let rec_len = |r: &WalRecord| RECORD_HEADER + r.payload_len(5);
        let last_start = full.len() - rec_len(recs.last().unwrap());
        debug_assert_eq!(
            HEADER_BYTES as usize + recs.iter().map(rec_len).sum::<usize>(),
            full.len()
        );

        for cut in last_start..=full.len() {
            let torn = temp_path(&format!("torture-cut-{cut}"));
            std::fs::write(&torn, &full[..cut]).unwrap();
            let (wal, replayed) = Wal::open(&torn, WalConfig::default()).unwrap();
            let expect: &[WalRecord] = if cut == full.len() {
                &recs
            } else {
                &recs[..recs.len() - 1]
            };
            assert_eq!(replayed, expect, "cut at byte {cut}");
            // The torn tail is gone from disk: reopening again replays the
            // same prefix and the file ends exactly at the durable prefix.
            assert_eq!(
                std::fs::metadata(&torn).unwrap().len(),
                wal.size_bytes(),
                "cut at byte {cut} left trailing garbage"
            );
            drop(wal);
            let (_, again) = Wal::open(&torn, WalConfig::default()).unwrap();
            assert_eq!(again, expect, "cut at byte {cut} (second open)");
            std::fs::remove_file(&torn).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_in_tail_is_dropped() {
        let path = temp_path("crc");
        let recs = sample_records(4);
        {
            let mut wal = Wal::create(&path, 4, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40; // flip a bit inside the final payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs[..recs.len() - 1]);
        std::fs::remove_file(&path).unwrap();
    }

    /// Point-in-time semantics: corruption in the *middle* of the log also
    /// ends recovery there — the records behind it are dropped and
    /// truncated, never skipped over (see the `open` doc for why erroring
    /// instead would brick legitimately crashed group-commit logs).
    #[test]
    fn mid_file_corruption_ends_recovery_there() {
        let path = temp_path("midrot");
        let recs = sample_records(4);
        let rec_len = |r: &WalRecord| RECORD_HEADER + r.payload_len(4);
        {
            let mut wal = Wal::create(&path, 4, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside record 1's payload (records 2 and 3 intact).
        let off = HEADER_BYTES as usize + rec_len(&recs[0]) + RECORD_HEADER + 2;
        bytes[off] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs[..1]);
        assert_eq!(
            wal.size_bytes(),
            HEADER_BYTES + rec_len(&recs[0]) as u64,
            "everything from the corrupt record on must be truncated"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// The sliding replay window must hand back byte-identical records
    /// when many records straddle chunk boundaries. A tiny dimensionality
    /// with thousands of records exercises dozens of window slides even
    /// with the production chunk size scaled down by the record count.
    #[test]
    fn streaming_replay_across_window_boundaries() {
        let path = temp_path("stream");
        let d = 48; // ~210 bytes per insert record
        let n = 4000u64; // ~840 KB of records ⇒ several 256 KiB windows
        {
            let mut wal = Wal::create(
                &path,
                d,
                WalConfig {
                    sync: SyncPolicy::Never,
                },
            )
            .unwrap();
            for id in 0..n {
                wal.append(&WalRecord::Insert {
                    id,
                    vector: (0..d).map(|j| (id as f32) + (j as f32) * 0.25).collect(),
                })
                .unwrap();
                if id % 7 == 0 {
                    wal.append(&WalRecord::Delete { id }).unwrap();
                }
            }
            wal.sync().unwrap();
        }
        let mut seen = 0u64;
        let mut next_insert = 0u64;
        let wal = Wal::open_streaming(&path, WalConfig::default(), |rec| {
            match rec {
                WalRecord::Insert { id, vector } => {
                    assert_eq!(id, next_insert);
                    assert_eq!(vector.len(), d);
                    assert_eq!(vector[1], (id as f32) + 0.25);
                    next_insert += 1;
                }
                WalRecord::Delete { id } => assert_eq!(id % 7, 0),
            }
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(next_insert, n);
        assert_eq!(seen, wal.record_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_apply_error_aborts_open() {
        let path = temp_path("abort");
        {
            let mut wal = Wal::create(&path, 2, WalConfig::default()).unwrap();
            for r in sample_records(2) {
                wal.append(&r).unwrap();
            }
        }
        let mut calls = 0;
        let err = Wal::open_streaming(&path, WalConfig::default(), |_| {
            calls += 1;
            if calls == 2 {
                Err(io::Error::other("replay sink failed"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "replay sink failed");
        assert_eq!(calls, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_path("trunc");
        let mut wal = Wal::create(&path, 2, WalConfig::default()).unwrap();
        for r in sample_records(2) {
            wal.append(&r).unwrap();
        }
        wal.truncate().unwrap();
        assert_eq!(wal.record_count(), 0);
        assert_eq!(wal.size_bytes(), HEADER_BYTES);
        // Appends after truncation land cleanly.
        wal.append(&WalRecord::Delete { id: 3 }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, vec![WalRecord::Delete { id: 3 }]);
        std::fs::remove_file(&path).unwrap();
    }

    /// `rewrite` swaps the whole log for the given records and keeps the
    /// handle usable: appends continue on the renamed file.
    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = temp_path("rewrite");
        let recs = sample_records(3);
        let mut wal = Wal::create(&path, 3, WalConfig::default()).unwrap();
        for r in &recs {
            wal.append(r).unwrap();
        }
        // Shrink to the suffix, as a compaction commit would.
        wal.rewrite(&recs[2..]).unwrap();
        assert_eq!(wal.record_count(), 2);
        wal.append(&WalRecord::Delete { id: 9 }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[..2], recs[2..]);
        assert_eq!(replayed[2], WalRecord::Delete { id: 9 });
        assert!(
            !tmp_sibling(&path).exists(),
            "tmp log must not survive a successful rewrite"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_to_empty_acts_as_crash_safe_truncate() {
        let path = temp_path("rewrite-empty");
        let mut wal = Wal::create(&path, 2, WalConfig::default()).unwrap();
        for r in sample_records(2) {
            wal.append(&r).unwrap();
        }
        wal.rewrite(&[]).unwrap();
        assert_eq!(wal.record_count(), 0);
        assert_eq!(wal.size_bytes(), HEADER_BYTES);
        drop(wal);
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert!(replayed.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deferred_append_then_explicit_sync() {
        let path = temp_path("deferred");
        let mut wal = Wal::create(&path, 2, WalConfig::default()).unwrap();
        let rec = WalRecord::Delete { id: 1 };
        // SyncPolicy::Always, but the group-commit path defers.
        wal.append_with_sync(&rec, false).unwrap();
        wal.append_with_sync(&rec, false).unwrap();
        assert_eq!(wal.unsynced_appends(), 2);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_appends(), 0);
        drop(wal);
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_tracks_sync_debt() {
        let path = temp_path("group");
        let mut wal = Wal::create(
            &path,
            2,
            WalConfig {
                sync: SyncPolicy::EveryN(3),
            },
        )
        .unwrap();
        let rec = WalRecord::Delete { id: 1 };
        wal.append(&rec).unwrap();
        wal.append(&rec).unwrap();
        assert_eq!(wal.unsynced_appends(), 2);
        wal.append(&rec).unwrap(); // third append triggers the group sync
        assert_eq!(wal.unsynced_appends(), 0);
        wal.append(&rec).unwrap();
        assert_eq!(wal.unsynced_appends(), 1);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_appends(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_or_create_and_dimension_check() {
        let path = temp_path("ooc");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replayed) = Wal::open_or_create(&path, 3, WalConfig::default()).unwrap();
        assert!(replayed.is_empty());
        wal.append(&WalRecord::Delete { id: 5 }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open_or_create(&path, 3, WalConfig::default()).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(Wal::open_or_create(&path, 7, WalConfig::default()).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Fault plans are process-global; tests arming them must not overlap.
    static FAULT_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn transient_write_fault_is_retried_and_append_lands() {
        use promips_storage::durability::faults::{FaultPlan, Recurrence};
        let _g = FAULT_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("retry-append");
        let mut wal = Wal::create(&path, 2, WalConfig::default()).unwrap();
        let before = faults::counters();
        faults::arm_with(
            FaultPlan {
                op: IoOp::Write,
                nth: 1,
                path_contains: Some("retry-append.wal".into()),
            },
            Recurrence::Once,
            io::ErrorKind::Interrupted,
        );
        // The injected transient failure is absorbed by the retry loop:
        // the caller sees a clean append and the record is durable.
        wal.append(&WalRecord::Delete { id: 1 }).unwrap();
        assert!(!faults::disarm(), "the fault fired (and was retried)");
        assert_eq!(faults::counters().injected - before.injected, 1);
        assert_eq!(wal.record_count(), 1);
        drop(wal);
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, vec![WalRecord::Delete { id: 1 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_read_fault_fails_replay_then_recovers() {
        use promips_storage::durability::faults::{FaultPlan, Recurrence};
        let _g = FAULT_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("read-fault");
        {
            let mut wal = Wal::create(&path, 2, WalConfig::default()).unwrap();
            wal.append(&WalRecord::Delete { id: 4 }).unwrap();
        }
        faults::arm_with(
            FaultPlan {
                op: IoOp::Read,
                nth: 1,
                path_contains: Some("read-fault.wal".into()),
            },
            Recurrence::Once,
            io::ErrorKind::Other,
        );
        let err = Wal::open(&path, WalConfig::default()).unwrap_err();
        assert!(faults::is_injected(&err), "unexpected error: {err}");
        // The one-shot plan self-disarmed: the log opens intact.
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, vec![WalRecord::Delete { id: 4 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_insert_dimension_panics() {
        let path = temp_path("dim");
        let mut wal = Wal::create(&path, 4, WalConfig::default()).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = wal.append(&WalRecord::Insert {
                id: 0,
                vector: vec![0.0; 3],
            });
        }));
        assert!(r.is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
