//! The log itself: append, group commit, replay-on-open with torn-tail
//! truncation, and post-compaction truncation.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::record::WalRecord;

const WAL_MAGIC: u64 = 0x5AA2_D1CE_3A70_0001;
const WAL_VERSION: u64 = 1;
/// magic + version + dimensionality.
pub(crate) const HEADER_BYTES: u64 = 24;
/// len prefix + crc.
const RECORD_HEADER: usize = 8;

/// When appends reach durable media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every append — nothing acknowledged is ever lost.
    #[default]
    Always,
    /// Group commit: `fsync` once per `n` appends (and on explicit
    /// [`Wal::sync`]). A crash loses at most the last `n − 1` mutations.
    EveryN(u32),
    /// Never sync implicitly; the OS flushes when it pleases. For
    /// measurement and bulk loads followed by an explicit [`Wal::sync`].
    Never,
}

/// Log configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalConfig {
    /// Group-commit knob (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
}

/// An open write-ahead log for one shard.
///
/// The in-memory state tracks the byte length of the *complete-record
/// prefix*; appends go exactly there, so a previous torn tail (already
/// truncated by [`Wal::open`]) can never resurface.
pub struct Wal {
    file: File,
    path: PathBuf,
    d: usize,
    config: WalConfig,
    /// End of the last complete record (file offset appends write at).
    len_bytes: u64,
    records: u64,
    /// Appends since the last sync (group-commit counter).
    unsynced: u32,
    /// Reusable encode buffer.
    buf: Vec<u8>,
}

impl Wal {
    /// Creates a fresh (empty) log for vectors of dimensionality `d`,
    /// fsyncing the header and the parent directory so the file itself
    /// survives a crash.
    pub fn create(path: impl AsRef<Path>, d: usize, config: WalConfig) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&(d as u64).to_le_bytes());
        file.write_all_at(&header, 0)?;
        file.sync_data()?;
        promips_sync_parent(&path)?;
        Ok(Self {
            file,
            path,
            d,
            config,
            len_bytes: HEADER_BYTES,
            records: 0,
            unsynced: 0,
            buf: Vec::new(),
        })
    }

    /// Opens an existing log and replays it: returns the handle plus the
    /// longest prefix of *complete* records, in append order. Everything
    /// from the first incomplete or corrupt record onward — an incomplete
    /// length prefix, an incomplete payload, or a CRC mismatch — is
    /// truncated off the file, so the log is clean for subsequent appends.
    ///
    /// This is **point-in-time recovery** (the same choice RocksDB's
    /// default WAL mode and SQLite's WAL replay make): recovery never
    /// extends past the first bad record, even if parseable bytes follow
    /// it. The alternative — erroring out when valid records appear after
    /// a gap — would brick legitimately crashed logs: under group commit
    /// the OS may persist the unsynced window's pages out of order, so a
    /// crash can leave a later record intact behind a hole, and such a log
    /// must still open. The cost is that mid-file bit-rot in an already
    /// fsynced region also truncates the records behind it; logs are kept
    /// short by compaction, which bounds that exposure.
    pub fn open(path: impl AsRef<Path>, config: WalConfig) -> io::Result<(Self, Vec<WalRecord>)> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        let mut bytes = vec![0u8; file_len as usize];
        file.read_exact_at(&mut bytes, 0)?;

        if bytes.len() < HEADER_BYTES as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("WAL {} shorter than its header", path.display()),
            ));
        }
        let magic = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let version = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let d = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        if magic != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad WAL magic in {}", path.display()),
            ));
        }
        if version != WAL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported WAL version {version}"),
            ));
        }

        let mut records = Vec::new();
        let mut pos = HEADER_BYTES as usize;
        let mut good_end = pos;
        while pos < bytes.len() {
            // First failure of any kind ends the scan (see the doc comment
            // on point-in-time recovery): records are never skipped over.
            if pos + RECORD_HEADER > bytes.len() {
                break; // partial length prefix
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_start = pos + RECORD_HEADER;
            if len == 0 || body_start + len > bytes.len() {
                break; // partial payload (or nonsense length running past EOF)
            }
            let payload = &bytes[body_start..body_start + len];
            if crc32(payload) != crc {
                break; // half-flushed sector
            }
            let rec = match WalRecord::decode_payload(payload, d) {
                Ok(r) => r,
                Err(_) => break, // checksummed but undecodable ⇒ treat as tail
            };
            records.push(rec);
            pos = body_start + len;
            good_end = pos;
        }

        if good_end as u64 != file_len {
            // Drop the torn tail so the next append starts on a record
            // boundary. Sync: the truncation itself must be durable, or a
            // second crash could resurrect garbage past our append point.
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }

        Ok((
            Self {
                file,
                path,
                d,
                config,
                len_bytes: good_end as u64,
                records: records.len() as u64,
                unsynced: 0,
                buf: Vec::new(),
            },
            records,
        ))
    }

    /// Opens `path` if it exists, otherwise creates a fresh log. The replay
    /// vector is empty for a fresh log.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        d: usize,
        config: WalConfig,
    ) -> io::Result<(Self, Vec<WalRecord>)> {
        if path.as_ref().exists() {
            let (wal, records) = Self::open(path, config)?;
            if wal.d != d {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("WAL dimensionality {} != index {d}", wal.d),
                ));
            }
            Ok((wal, records))
        } else {
            Ok((Self::create(path, d, config)?, Vec::new()))
        }
    }

    /// Appends one record, honouring the group-commit policy. The record is
    /// on disk (modulo the policy's sync debt) when this returns; apply it
    /// to in-memory state only afterwards — that ordering is what makes the
    /// log *write-ahead*.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if let WalRecord::Insert { vector, .. } = record {
            assert_eq!(
                vector.len(),
                self.d,
                "WAL dimensionality mismatch: record {} vs log {}",
                vector.len(),
                self.d
            );
        }
        let payload_len = record.payload_len(self.d);
        self.buf.clear();
        self.buf.reserve(RECORD_HEADER + payload_len);
        self.buf
            .extend_from_slice(&(payload_len as u32).to_le_bytes());
        self.buf.extend_from_slice(&[0u8; 4]); // crc placeholder
        record.encode_payload(&mut self.buf);
        debug_assert_eq!(self.buf.len(), RECORD_HEADER + payload_len);
        let crc = crc32(&self.buf[RECORD_HEADER..]);
        self.buf[4..8].copy_from_slice(&crc.to_le_bytes());

        self.file.write_all_at(&self.buf, self.len_bytes)?;
        self.len_bytes += self.buf.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        match self.config.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces everything appended so far to durable media.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Empties the log (keeps the header). Called **after** a compaction's
    /// manifest swap has landed — at that point the records are folded into
    /// the new generation and replaying them would resurrect dead state.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(HEADER_BYTES)?;
        self.file.sync_data()?;
        self.len_bytes = HEADER_BYTES;
        self.records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Number of complete records in the log.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Bytes of complete records + header (the operator-facing "how big is
    /// my WAL" number; compaction policies feed on it).
    pub fn size_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Appends not yet covered by an fsync (sync debt of the group-commit
    /// policy).
    pub fn unsynced_appends(&self) -> u32 {
        self.unsynced
    }

    /// Vector dimensionality the log was created with.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Fsyncs the directory containing `path` (rename/create durability).
fn promips_sync_parent(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            File::open(parent)?.sync_all()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("promips-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    fn sample_records(d: usize) -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 100,
                vector: (0..d).map(|i| i as f32 * 0.5).collect(),
            },
            WalRecord::Delete { id: 7 },
            WalRecord::Insert {
                id: 101,
                vector: (0..d).map(|i| -(i as f32)).collect(),
            },
            WalRecord::Delete { id: 100 },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let recs = sample_records(6);
        {
            let mut wal = Wal::create(&path, 6, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
            assert_eq!(wal.record_count(), 4);
        }
        let (wal, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs);
        assert_eq!(wal.record_count(), 4);
        assert_eq!(wal.d(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_continue_after_reopen() {
        let path = temp_path("continue");
        let recs = sample_records(3);
        {
            let mut wal = Wal::create(&path, 3, WalConfig::default()).unwrap();
            for r in &recs[..2] {
                wal.append(r).unwrap();
            }
        }
        {
            let (mut wal, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
            assert_eq!(replayed.len(), 2);
            for r in &recs[2..] {
                wal.append(r).unwrap();
            }
        }
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs);
        std::fs::remove_file(&path).unwrap();
    }

    /// The crash-safety torture test of the issue: truncate the log at
    /// every byte offset inside (and around) the final record; replay must
    /// recover exactly the prefix of complete records — never panic, never
    /// invent a record, never lose an earlier one.
    #[test]
    fn torn_tail_truncated_at_every_byte_offset() {
        let path = temp_path("torture");
        let recs = sample_records(5);
        {
            let mut wal = Wal::create(&path, 5, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Byte length of each record as laid out in the file.
        let rec_len = |r: &WalRecord| RECORD_HEADER + r.payload_len(5);
        let last_start = full.len() - rec_len(recs.last().unwrap());
        debug_assert_eq!(
            HEADER_BYTES as usize + recs.iter().map(rec_len).sum::<usize>(),
            full.len()
        );

        for cut in last_start..=full.len() {
            let torn = temp_path(&format!("torture-cut-{cut}"));
            std::fs::write(&torn, &full[..cut]).unwrap();
            let (wal, replayed) = Wal::open(&torn, WalConfig::default()).unwrap();
            let expect: &[WalRecord] = if cut == full.len() {
                &recs
            } else {
                &recs[..recs.len() - 1]
            };
            assert_eq!(replayed, expect, "cut at byte {cut}");
            // The torn tail is gone from disk: reopening again replays the
            // same prefix and the file ends exactly at the durable prefix.
            assert_eq!(
                std::fs::metadata(&torn).unwrap().len(),
                wal.size_bytes(),
                "cut at byte {cut} left trailing garbage"
            );
            drop(wal);
            let (_, again) = Wal::open(&torn, WalConfig::default()).unwrap();
            assert_eq!(again, expect, "cut at byte {cut} (second open)");
            std::fs::remove_file(&torn).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_in_tail_is_dropped() {
        let path = temp_path("crc");
        let recs = sample_records(4);
        {
            let mut wal = Wal::create(&path, 4, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40; // flip a bit inside the final payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs[..recs.len() - 1]);
        std::fs::remove_file(&path).unwrap();
    }

    /// Point-in-time semantics: corruption in the *middle* of the log also
    /// ends recovery there — the records behind it are dropped and
    /// truncated, never skipped over (see the `open` doc for why erroring
    /// instead would brick legitimately crashed group-commit logs).
    #[test]
    fn mid_file_corruption_ends_recovery_there() {
        let path = temp_path("midrot");
        let recs = sample_records(4);
        let rec_len = |r: &WalRecord| RECORD_HEADER + r.payload_len(4);
        {
            let mut wal = Wal::create(&path, 4, WalConfig::default()).unwrap();
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside record 1's payload (records 2 and 3 intact).
        let off = HEADER_BYTES as usize + rec_len(&recs[0]) + RECORD_HEADER + 2;
        bytes[off] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, recs[..1]);
        assert_eq!(
            wal.size_bytes(),
            HEADER_BYTES + rec_len(&recs[0]) as u64,
            "everything from the corrupt record on must be truncated"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_path("trunc");
        let mut wal = Wal::create(&path, 2, WalConfig::default()).unwrap();
        for r in sample_records(2) {
            wal.append(&r).unwrap();
        }
        wal.truncate().unwrap();
        assert_eq!(wal.record_count(), 0);
        assert_eq!(wal.size_bytes(), HEADER_BYTES);
        // Appends after truncation land cleanly.
        wal.append(&WalRecord::Delete { id: 3 }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path, WalConfig::default()).unwrap();
        assert_eq!(replayed, vec![WalRecord::Delete { id: 3 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_tracks_sync_debt() {
        let path = temp_path("group");
        let mut wal = Wal::create(
            &path,
            2,
            WalConfig {
                sync: SyncPolicy::EveryN(3),
            },
        )
        .unwrap();
        let rec = WalRecord::Delete { id: 1 };
        wal.append(&rec).unwrap();
        wal.append(&rec).unwrap();
        assert_eq!(wal.unsynced_appends(), 2);
        wal.append(&rec).unwrap(); // third append triggers the group sync
        assert_eq!(wal.unsynced_appends(), 0);
        wal.append(&rec).unwrap();
        assert_eq!(wal.unsynced_appends(), 1);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_appends(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_or_create_and_dimension_check() {
        let path = temp_path("ooc");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replayed) = Wal::open_or_create(&path, 3, WalConfig::default()).unwrap();
        assert!(replayed.is_empty());
        wal.append(&WalRecord::Delete { id: 5 }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open_or_create(&path, 3, WalConfig::default()).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(Wal::open_or_create(&path, 7, WalConfig::default()).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_insert_dimension_panics() {
        let path = temp_path("dim");
        let mut wal = Wal::create(&path, 4, WalConfig::default()).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = wal.append(&WalRecord::Insert {
                id: 0,
                vector: vec![0.0; 3],
            });
        }));
        assert!(r.is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
