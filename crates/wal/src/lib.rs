//! # Per-shard write-ahead log
//!
//! The paper motivates the lightweight index with mutable workloads — "a
//! huge amount of data will be frequently inserted or deleted in a short
//! time" on resource-constrained devices — but an in-memory delta segment
//! alone is volatile: every mutation dies with the process. This crate is
//! the durability layer underneath the mutation lifecycle: each shard of a
//! sharded index owns one append-only log file, every
//! [`WalRecord::Insert`]/[`WalRecord::Delete`] is written (length-prefixed
//! and CRC32-checksummed) **before** it is applied to the in-memory delta,
//! and reopening a crashed index replays the log to reconstruct exactly the
//! mutations that reached disk.
//!
//! ## File format
//!
//! ```text
//! header (24 bytes): magic u64 | version u64 | dimensionality u64
//! record:            len u32 | crc32(payload) u32 | payload (len bytes)
//! payload:           tag u8 (1 = insert, 2 = delete) | id u64 | [d × f32]
//! ```
//!
//! All integers little-endian. The trailing vector is present only for
//! inserts and must hold exactly `d` floats (`d` from the header), so a
//! record's length is fully determined by its tag — a mismatch is treated
//! as corruption, not trusted.
//!
//! ## Crash model
//!
//! [`Wal::open`] scans records sequentially and stops at the first
//! *incomplete or corrupt* record: a torn tail (partial length prefix,
//! partial payload, or a CRC mismatch from a half-flushed sector) is
//! **truncated away** so the next append starts at a clean boundary. Replay
//! therefore yields exactly the prefix of complete records — no panic, no
//! phantom point — which the torture test pins down by truncating a log at
//! every byte offset of its final record.
//!
//! ## Group commit
//!
//! `fsync` per record is correct but slow; [`SyncPolicy`] trades a bounded
//! number of most-recent mutations for throughput: [`SyncPolicy::Always`]
//! syncs every append, [`SyncPolicy::EveryN`] syncs once per `n` appends
//! (the classic group-commit knob), [`SyncPolicy::Never`] leaves flushing
//! to the OS. Whatever the policy, [`Wal::sync`] forces the log down
//! before, e.g., acknowledging a batch.

pub mod crc;
pub mod log;
pub mod record;

pub use crc::crc32;
pub use log::{SyncPolicy, Wal, WalConfig};
pub use record::WalRecord;
