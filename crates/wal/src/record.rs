//! Mutation records and their wire encoding.

use std::io;

/// One durable mutation. The log is the authority for everything that
/// happened to a shard since its last compaction; replaying a shard's
/// records in order over its compacted state reconstructs the live index.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A point insertion: global id plus the original vector (the index can
    /// recompute projections, norms, and Quick-Probe state from it).
    Insert {
        /// Global id assigned at insert time (stable across compactions).
        id: u64,
        /// The original `d`-dimensional vector.
        vector: Vec<f32>,
    },
    /// A deletion by global id. Replay of a delete whose id no longer names
    /// a live point is a no-op (the point may have been inserted and
    /// deleted within the same log window, or the record may be stale).
    Delete {
        /// Global id of the tombstoned point.
        id: u64,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

impl WalRecord {
    /// The record's global id.
    pub fn id(&self) -> u64 {
        match self {
            WalRecord::Insert { id, .. } | WalRecord::Delete { id } => *id,
        }
    }

    /// Exact payload length in bytes for dimensionality `d`.
    pub(crate) fn payload_len(&self, d: usize) -> usize {
        match self {
            WalRecord::Insert { .. } => 1 + 8 + 4 * d,
            WalRecord::Delete { .. } => 1 + 8,
        }
    }

    /// Encodes the payload (tag, id, optional vector) into `buf`.
    pub(crate) fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Insert { id, vector } => {
                buf.push(TAG_INSERT);
                buf.extend_from_slice(&id.to_le_bytes());
                for v in vector {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            WalRecord::Delete { id } => {
                buf.push(TAG_DELETE);
                buf.extend_from_slice(&id.to_le_bytes());
            }
        }
    }

    /// Decodes a payload previously produced by
    /// [`WalRecord::encode_payload`]. The length must match the tag exactly
    /// for dimensionality `d`; anything else is corruption.
    pub(crate) fn decode_payload(payload: &[u8], d: usize) -> io::Result<Self> {
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt WAL record payload: {what}"),
            )
        };
        let (&tag, rest) = payload.split_first().ok_or_else(|| bad("empty"))?;
        match tag {
            TAG_INSERT => {
                if rest.len() != 8 + 4 * d {
                    return Err(bad("insert length mismatch"));
                }
                let id = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
                let vector = rest[8..]
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                Ok(WalRecord::Insert { id, vector })
            }
            TAG_DELETE => {
                if rest.len() != 8 {
                    return Err(bad("delete length mismatch"));
                }
                let id = u64::from_le_bytes(rest.try_into().expect("8 bytes"));
                Ok(WalRecord::Delete { id })
            }
            _ => Err(bad("unknown tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let recs = [
            WalRecord::Insert {
                id: 42,
                vector: vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE],
            },
            WalRecord::Delete { id: u64::MAX },
        ];
        for r in &recs {
            let mut buf = Vec::new();
            r.encode_payload(&mut buf);
            assert_eq!(buf.len(), r.payload_len(4));
            let back = WalRecord::decode_payload(&buf, 4).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn wrong_length_or_tag_rejected() {
        let mut buf = Vec::new();
        WalRecord::Insert {
            id: 1,
            vector: vec![0.5; 3],
        }
        .encode_payload(&mut buf);
        // Declared d = 4 but the vector holds 3 floats.
        assert!(WalRecord::decode_payload(&buf, 4).is_err());
        assert!(WalRecord::decode_payload(&[], 4).is_err());
        assert!(WalRecord::decode_payload(&[9, 0, 0, 0, 0, 0, 0, 0, 0], 4).is_err());
    }
}
