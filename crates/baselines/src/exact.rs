//! Exact MIP search by multi-threaded linear scan — the ground truth
//! generator for overall ratio (Fig. 5) and recall (Fig. 6).

use promips_linalg::Matrix;

use crate::method::{merge_topk, Neighbor};

/// An in-memory exact scanner.
///
/// Not a [`crate::MipsMethod`]: it has no index or disk footprint and only
/// serves to compute exact top-k answers (optionally in parallel with
/// `std::thread::scope`).
pub struct ExactScan<'a> {
    data: &'a Matrix,
    threads: usize,
}

impl<'a> ExactScan<'a> {
    /// Creates a scanner over `data` using `threads` worker threads
    /// (clamped to at least 1).
    pub fn new(data: &'a Matrix, threads: usize) -> Self {
        Self {
            data,
            threads: threads.max(1),
        }
    }

    /// Exact top-k maximum inner product points for `q`.
    pub fn top_k(&self, q: &[f32], k: usize) -> Vec<Neighbor> {
        let n = self.data.rows();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        if self.threads == 1 || n < 4096 {
            return merge_topk(vec![scan_chunk(self.data, 0, n, q, k)], k);
        }
        let chunk = n.div_ceil(self.threads);
        let mut lists: Vec<Vec<Neighbor>> = Vec::with_capacity(self.threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    s.spawn(move || {
                        if lo < hi {
                            scan_chunk(self.data, lo, hi, q, k)
                        } else {
                            Vec::new()
                        }
                    })
                })
                .collect();
            for h in handles {
                lists.push(h.join().expect("scan thread panicked"));
            }
        });
        merge_topk(lists, k)
    }

    /// Exact top-k for a batch of queries.
    pub fn top_k_batch(&self, queries: &Matrix, k: usize) -> Vec<Vec<Neighbor>> {
        queries.iter_rows().map(|q| self.top_k(q, k)).collect()
    }
}

fn scan_chunk(data: &Matrix, lo: usize, hi: usize, q: &[f32], k: usize) -> Vec<Neighbor> {
    // Keep a small sorted buffer; for chunk scans a full sort at the end is
    // simpler and fast enough (k ≤ 100 in all experiments). Scoring runs
    // through the blocked dot4 loop (`Matrix::dot_rows`, the verify shape).
    let mut items: Vec<Neighbor> = Vec::with_capacity(hi - lo);
    data.dot_rows(lo, hi, q, |row, ip| {
        items.push(Neighbor { id: row as u64, ip })
    });
    items.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
    items.truncate(k);
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect()),
        )
    }

    #[test]
    fn finds_planted_maximum() {
        let mut data = random_data(200, 8, 1);
        // Plant an obvious winner aligned with the query.
        data.row_mut(77).copy_from_slice(&[100.0; 8]);
        let scan = ExactScan::new(&data, 1);
        let q = vec![1.0f32; 8];
        let top = scan.top_k(&q, 3);
        assert_eq!(top[0].id, 77);
        assert!((top[0].ip - 800.0).abs() < 1e-6);
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let data = random_data(10_000, 16, 2);
        let single = ExactScan::new(&data, 1);
        let multi = ExactScan::new(&data, 4);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..5 {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let a = single.top_k(&q, 10);
            let b = multi.top_k(&q, 10);
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn k_exceeding_n_is_clamped() {
        let data = random_data(5, 4, 4);
        let scan = ExactScan::new(&data, 2);
        let top = scan.top_k(&[1.0, 0.0, 0.0, 0.0], 10);
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].ip >= w[1].ip));
    }
}
