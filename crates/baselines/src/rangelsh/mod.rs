//! Norm-Ranging LSH (Yan et al., NeurIPS 2018).
//!
//! Simple-LSH suffers from "long tails" in real 2-norm distributions: one
//! huge norm forces every other point's transformed coordinates toward the
//! pole, destroying resolution. Norm-ranging fixes this by splitting the
//! norm-sorted dataset into equal-cardinality sub-datasets, applying
//! Simple-LSH **per sub-dataset** with the local maximum norm `Uj`:
//!
//! `o ↦ [o/Uj ; sqrt(1 − ‖o/Uj‖²)]` (unit norm), query `q ↦ [q/‖q‖ ; 0]`.
//!
//! Each sub-dataset hashes its transformed points to `L`-bit SimHash codes
//! (sign random projections; paper setting: 32 partitions, 16-bit codes).
//! The **single-table multi-probe** strategy ranks buckets *across*
//! sub-datasets: a bucket at Hamming distance `h` from the query code in
//! sub-dataset `j` is ranked by the estimated inner-product bound
//! `Uj·cos(π·h/L)`, and buckets are probed in descending bound until the
//! bound cannot beat the current k-th best inner product (or a candidate
//! budget runs out).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::sync::Arc;

use promips_idistance::layout::{enc, write_blob};
use promips_linalg::{dot, norm2, sq_norm2, Matrix};
use promips_stats::Xoshiro256pp;
use promips_storage::{PageId, Pager};

use crate::fetch::fetch_f32_records;
use crate::method::{MipsMethod, Neighbor};

/// Configuration (defaults are the paper's settings).
#[derive(Debug, Clone, Copy)]
pub struct RangeLshConfig {
    /// Number of norm-range sub-datasets (paper: 32).
    pub partitions: usize,
    /// SimHash code length in bits (paper: 16; must be ≤ 16 here because
    /// codes are stored as `u16`).
    pub code_bits: usize,
    /// Candidate budget as a fraction of `n` (scan stops after this many
    /// exact verifications even if the bound ordering would continue).
    pub budget_frac: f64,
    /// RNG seed for the hash vectors.
    pub seed: u64,
}

impl Default for RangeLshConfig {
    fn default() -> Self {
        Self {
            partitions: 32,
            code_bits: 16,
            budget_frac: 0.3,
            seed: 0x4A5C,
        }
    }
}

struct SubDataset {
    /// Local max norm `Uj`.
    u: f64,
    /// Global ids in on-disk record order.
    ids: Vec<u64>,
    orig_start: PageId,
    /// code → local record offsets.
    buckets: HashMap<u16, Vec<u32>>,
}

/// A built Norm-Ranging LSH index.
pub struct RangeLsh {
    pager: Arc<Pager>,
    d: usize,
    config: RangeLshConfig,
    /// `code_bits × (d+1)` shared Gaussian hash matrix.
    hash: Matrix,
    subsets: Vec<SubDataset>,
    n: usize,
}

/// Max-heap entry for the cross-subset bucket ranking.
struct ProbeEntry {
    bound: f64,
    subset: usize,
    hamming: usize,
}
impl PartialEq for ProbeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.subset == other.subset
    }
}
impl Eq for ProbeEntry {}
impl PartialOrd for ProbeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ProbeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.subset.cmp(&self.subset))
    }
}

impl RangeLsh {
    /// Builds the index over `data`.
    pub fn build(data: &Matrix, config: RangeLshConfig, pager: Arc<Pager>) -> io::Result<Self> {
        assert!(!data.is_empty());
        assert!(config.code_bits >= 1 && config.code_bits <= 16);
        let n = data.rows();
        let d = data.cols();
        let partitions = config.partitions.min(n).max(1);

        // Shared SimHash vectors over the (d+1)-dim transformed space.
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
        let mut hdata = Vec::with_capacity(config.code_bits * (d + 1));
        for _ in 0..config.code_bits * (d + 1) {
            hdata.push(rng.normal() as f32);
        }
        let hash = Matrix::from_vec(config.code_bits, d + 1, hdata);

        // Norm-sorted, split into equal-cardinality ranges. The paper
        // organizes subsets on disk by descending maximum norm.
        let mut order: Vec<(f64, u64)> = (0..n).map(|i| (norm2(data.row(i)), i as u64)).collect();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let per = n.div_ceil(partitions);
        let mut subsets = Vec::with_capacity(partitions);
        for chunk in order.chunks(per) {
            let u = chunk[0].0.max(1e-12);
            let ids: Vec<u64> = chunk.iter().map(|&(_, id)| id).collect();
            let mut blob = Vec::with_capacity(ids.len() * 4 * d);
            let mut buckets: HashMap<u16, Vec<u32>> = HashMap::new();
            for (local, &id) in ids.iter().enumerate() {
                let row = data.row(id as usize);
                enc::put_f32s(&mut blob, row);
                let t = simple_lsh_transform(row, u);
                let code = simhash_code(&hash, &t);
                buckets.entry(code).or_default().push(local as u32);
            }
            let orig_start = write_blob(&pager, &blob)?;
            subsets.push(SubDataset {
                u,
                ids,
                orig_start,
                buckets,
            });
        }

        Ok(Self {
            pager,
            d,
            config,
            hash,
            subsets,
            n,
        })
    }

    /// Number of sub-datasets.
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    fn search_impl(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>> {
        assert_eq!(q.len(), self.d);
        let l = self.config.code_bits;
        // Simple-LSH query transform: [q/‖q‖ ; 0].
        let qn = norm2(q).max(1e-12);
        let mut tq: Vec<f32> = q.iter().map(|&v| (v as f64 / qn) as f32).collect();
        tq.push(0.0);
        let q_code = simhash_code(&self.hash, &tq);

        let budget = ((self.config.budget_frac * self.n as f64).ceil() as usize).max(4 * k);
        let mut top: Vec<Neighbor> = Vec::new();
        let mut verified = 0usize;

        // Rank (subset, hamming) cells by the bound Uj·cos(π·h/L).
        let mut heap: BinaryHeap<ProbeEntry> = BinaryHeap::new();
        for (j, s) in self.subsets.iter().enumerate() {
            heap.push(ProbeEntry {
                bound: s.u,
                subset: j,
                hamming: 0,
            });
        }

        // The cos-angle bound is an *estimate*, not a true upper bound, so
        // trusting it immediately hurts accuracy on small buckets; require a
        // minimum amount of verification before letting it terminate.
        let min_verified = (10 * k).min(budget);
        while let Some(entry) = heap.pop() {
            // Ranking-bound termination: every unprobed bucket's estimated
            // best inner product is below the current k-th best.
            if top.len() == k && top[k - 1].ip >= entry.bound && verified >= min_verified {
                break;
            }
            if verified >= budget {
                break;
            }
            let s = &self.subsets[entry.subset];
            // All codes at Hamming distance h from q_code.
            for code in codes_at_hamming(q_code, entry.hamming, l) {
                let Some(locals) = s.buckets.get(&code) else {
                    continue;
                };
                let origs = fetch_f32_records(&self.pager, s.orig_start, self.d, locals)?;
                for (&local, orig) in locals.iter().zip(&origs) {
                    let ip = dot(orig, q);
                    push_topk(
                        &mut top,
                        Neighbor {
                            id: s.ids[local as usize],
                            ip,
                        },
                        k,
                    );
                    verified += 1;
                }
                if verified >= budget {
                    break;
                }
            }
            if entry.hamming < l {
                let h = entry.hamming + 1;
                let bound = s.u * (std::f64::consts::PI * h as f64 / l as f64).cos();
                heap.push(ProbeEntry {
                    bound,
                    subset: entry.subset,
                    hamming: h,
                });
            }
        }
        Ok(top)
    }
}

/// `o ↦ [o/U ; sqrt(1 − ‖o/U‖²)]`.
fn simple_lsh_transform(o: &[f32], u: f64) -> Vec<f32> {
    let mut t: Vec<f32> = o.iter().map(|&v| (v as f64 / u) as f32).collect();
    let rest = (1.0 - sq_norm2(&t)).max(0.0);
    t.push(rest.sqrt() as f32);
    t
}

/// SimHash sign code of a transformed vector.
fn simhash_code(hash: &Matrix, t: &[f32]) -> u16 {
    let mut code = 0u16;
    for i in 0..hash.rows() {
        if dot(hash.row(i), t) >= 0.0 {
            code |= 1 << i;
        }
    }
    code
}

/// Enumerates all `L`-bit codes at exactly Hamming distance `h` from `base`
/// (Gosper's-hack combination walk over bit masks).
fn codes_at_hamming(base: u16, h: usize, l: usize) -> Vec<u16> {
    assert!(l <= 16);
    if h == 0 {
        return vec![base];
    }
    if h > l {
        return Vec::new();
    }
    let mut out = Vec::new();
    let limit: u32 = 1 << l;
    let mut mask: u32 = (1 << h) - 1;
    while mask < limit {
        out.push(base ^ (mask as u16));
        // Gosper's hack: next bit permutation with the same popcount.
        let c = mask & mask.wrapping_neg();
        let r = mask + c;
        mask = (((r ^ mask) >> 2) / c) | r;
    }
    out
}

fn push_topk(top: &mut Vec<Neighbor>, nb: Neighbor, k: usize) {
    let pos = top.partition_point(|x| x.ip > nb.ip || (x.ip == nb.ip && x.id < nb.id));
    top.insert(pos, nb);
    if top.len() > k {
        top.pop();
    }
}

impl MipsMethod for RangeLsh {
    fn name(&self) -> &'static str {
        "Range-LSH"
    }

    fn search(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>> {
        self.search_impl(q, k)
    }

    fn index_size_bytes(&self) -> u64 {
        // Codes (2 bytes/point in buckets) + ids + hash matrix; the file
        // holds only raw data blobs, which don't count as index.
        let bucket_bytes: u64 = self
            .subsets
            .iter()
            .map(|s| {
                s.buckets
                    .values()
                    .map(|v| 4 * v.len() as u64 + 2)
                    .sum::<u64>()
                    + s.ids.len() as u64 * 8
            })
            .sum();
        bucket_bytes + (self.hash.rows() * self.hash.cols() * 4) as u64
    }

    fn page_accesses(&self) -> u64 {
        self.pager.stats().snapshot().logical_reads
    }

    fn reset_stats(&self) {
        self.pager.stats().reset();
    }

    fn clear_cache(&self) {
        self.pager.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|i| {
                let scale = 0.5 + 2.0 * (i % 7) as f32 / 7.0;
                (0..d).map(|_| scale * rng.normal() as f32).collect()
            }),
        )
    }

    #[test]
    fn codes_at_hamming_enumeration() {
        let codes = codes_at_hamming(0b0000, 2, 4);
        assert_eq!(codes.len(), 6); // C(4,2)
        for c in &codes {
            assert_eq!(c.count_ones(), 2);
        }
        assert_eq!(codes_at_hamming(0b1111, 0, 4), vec![0b1111]);
        assert_eq!(codes_at_hamming(0, 5, 4), Vec::<u16>::new());
        // Distance is relative to base.
        let from_base = codes_at_hamming(0b1010, 1, 4);
        for c in &from_base {
            assert_eq!((c ^ 0b1010u16).count_ones(), 1);
        }
    }

    #[test]
    fn transform_is_unit_norm() {
        let o = vec![0.3f32, -0.4, 0.5];
        let t = simple_lsh_transform(&o, 2.0);
        assert_eq!(t.len(), 4);
        assert!((sq_norm2(&t) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn subsets_partition_dataset() {
        let data = random_data(500, 8, 1);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let rl = RangeLsh::build(&data, RangeLshConfig::default(), pager).unwrap();
        let total: usize = rl.subsets.iter().map(|s| s.ids.len()).sum();
        assert_eq!(total, 500);
        assert_eq!(rl.num_subsets(), 32);
        // Subset max norms are non-increasing.
        assert!(rl.subsets.windows(2).all(|w| w[0].u >= w[1].u - 1e-9));
    }

    #[test]
    fn search_quality_reasonable() {
        let data = random_data(1000, 16, 3);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let rl = RangeLsh::build(&data, RangeLshConfig::default(), pager).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ratio_sum = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let res = rl.search(&q, 5).unwrap();
            assert!(!res.is_empty());
            let best = (0..1000)
                .map(|i| dot(data.row(i), &q))
                .fold(f64::NEG_INFINITY, f64::max);
            if best > 0.0 {
                ratio_sum += (res[0].ip / best).min(1.0);
            } else {
                ratio_sum += 1.0;
            }
        }
        let mean = ratio_sum / trials as f64;
        assert!(mean > 0.75, "mean top-1 ratio {mean} too low");
    }

    #[test]
    fn pages_counted_and_budget_bounds_work() {
        let data = random_data(800, 12, 9);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let cfg = RangeLshConfig {
            budget_frac: 0.05,
            ..Default::default()
        };
        let rl = RangeLsh::build(&data, cfg, pager).unwrap();
        rl.clear_cache();
        rl.reset_stats();
        let q: Vec<f32> = vec![0.7; 12];
        let res = rl.search(&q, 10).unwrap();
        assert!(!res.is_empty());
        assert!(rl.page_accesses() > 0);
        assert!(rl.index_size_bytes() > 0);
    }
}
