//! The QNF (Query Normalized First) asymmetric transformation of H2-ALSH.
//!
//! For a subset with maximum norm `M`:
//!
//! * data:  `o ↦ [o ; sqrt(M² − ‖o‖²)]` — a `(d+1)`-dim point of norm `M`;
//! * query: `q ↦ [λq ; 0]` with `λ = M/‖q‖` — also of norm `M`.
//!
//! Then `dis²(T(o), T(q)) = 2M² − 2λ⟨o, q⟩`, strictly decreasing in the
//! inner product: the MIP order inside the subset equals the NN order in
//! the transformed space, with **no transformation error** (the property
//! that distinguishes H2-ALSH from L2-ALSH/Sign-ALSH).

use promips_linalg::sq_norm2;

/// QNF transformer for one norm subset.
#[derive(Debug, Clone, Copy)]
pub struct Qnf {
    /// The subset's maximum 2-norm `M`.
    pub max_norm: f64,
}

impl Qnf {
    /// Transforms a data point (requires `‖o‖ ≤ M`, clamped for safety
    /// against rounding).
    pub fn transform_data(&self, o: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(o.len() + 1);
        out.extend_from_slice(o);
        let rest = (self.max_norm * self.max_norm - sq_norm2(o)).max(0.0);
        out.push(rest.sqrt() as f32);
        out
    }

    /// Transforms a query; returns the transformed vector and the scale
    /// `λ = M/‖q‖` (needed to map inner products to transformed distances).
    pub fn transform_query(&self, q: &[f32]) -> (Vec<f32>, f64) {
        let qn = sq_norm2(q).sqrt();
        assert!(qn > 0.0, "QNF requires a non-zero query");
        let lambda = self.max_norm / qn;
        let mut out = Vec::with_capacity(q.len() + 1);
        out.extend(q.iter().map(|&v| (v as f64 * lambda) as f32));
        out.push(0.0);
        (out, lambda)
    }

    /// Transformed squared distance from an exact inner product:
    /// `dis²(T(o), T(q)) = 2M² − 2λ⟨o,q⟩` (clamped at 0).
    pub fn sq_dist_from_ip(&self, lambda: f64, ip: f64) -> f64 {
        (2.0 * self.max_norm * self.max_norm - 2.0 * lambda * ip).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::{dot, sq_dist};
    use promips_stats::Xoshiro256pp;

    #[test]
    fn transformed_data_has_norm_m() {
        let qnf = Qnf { max_norm: 5.0 };
        let t = qnf.transform_data(&[3.0, 0.0]);
        assert_eq!(t.len(), 3);
        assert!((sq_norm2(&t) - 25.0).abs() < 1e-6);
    }

    #[test]
    fn distance_identity_holds() {
        // dis²(T(o),T(q)) must equal 2M² − 2λ⟨o,q⟩ for any o with ‖o‖ ≤ M.
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let d = 12;
        for _ in 0..50 {
            let o: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
            let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
            let m = sq_norm2(&o).sqrt() * 1.3;
            let qnf = Qnf { max_norm: m };
            let to = qnf.transform_data(&o);
            let (tq, lambda) = qnf.transform_query(&q);
            let lhs = sq_dist(&to, &tq);
            let rhs = qnf.sq_dist_from_ip(lambda, dot(&o, &q));
            assert!(
                (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
                "{lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn nn_order_equals_mip_order() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let d = 8;
        let points: Vec<Vec<f32>> = (0..30)
            .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
            .collect();
        let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        let m = points
            .iter()
            .map(|p| sq_norm2(p).sqrt())
            .fold(0.0, f64::max);
        let qnf = Qnf { max_norm: m };
        let (tq, _) = qnf.transform_query(&q);

        let mut by_ip: Vec<usize> = (0..30).collect();
        by_ip.sort_by(|&a, &b| dot(&points[b], &q).total_cmp(&dot(&points[a], &q)));
        let mut by_dist: Vec<usize> = (0..30).collect();
        by_dist.sort_by(|&a, &b| {
            sq_dist(&qnf.transform_data(&points[a]), &tq)
                .total_cmp(&sq_dist(&qnf.transform_data(&points[b]), &tq))
        });
        assert_eq!(by_ip, by_dist);
    }
}
