//! QALSH: query-aware locality-sensitive hashing over B+-trees
//! (Huang et al., PVLDB 2015) — the disk-resident c-ANN engine H2-ALSH
//! delegates to, per the ProMIPS paper's implementation note
//! ("we employ the disk-resident QALSH in the implementation of H2-ALSH").
//!
//! Each of the `m` hash functions is `h_a(o) = ⟨a, o⟩` with `a ~ N(0, I)`;
//! every function's values are indexed by one B+-tree. A query defines its
//! *own* bucket `[h(q) − wR/2, h(q) + wR/2]` (query-aware), widened by
//! virtual rehashing (`R ← c·R`) round after round. Points colliding with
//! the query in at least `l` of the `m` trees are *frequent* and get
//! verified; the search stops when `k` verified points lie within `c·R` or
//! the candidate budget `βn + k` is exhausted.
//!
//! The number of trees `m` grows like `O(log n)` with substantial constants
//! — this is exactly the "large number of hash tables" overhead ProMIPS's
//! Fig. 4 contrasts against.

use std::io;
use std::sync::Arc;

use promips_btree::{f64_to_key, BTree};
use promips_linalg::{dot, Matrix};
use promips_stats::{normal_cdf, Xoshiro256pp};
use promips_storage::Pager;

/// Derived QALSH parameters.
#[derive(Debug, Clone, Copy)]
pub struct QalshParams {
    /// Bucket width `w = sqrt(8c²·ln c / (c² − 1))` (minimizes ρ).
    pub w: f64,
    /// Number of hash functions / trees.
    pub m: usize,
    /// Collision (frequency) threshold `l = ⌈α·m⌉`.
    pub l: usize,
    /// Candidate budget `βn + k` uses this `βn` part.
    pub beta_n: usize,
    /// The approximation ratio the parameters were derived for.
    pub c: f64,
}

impl QalshParams {
    /// Derives parameters for a subset of `n` points with approximation
    /// ratio `c > 1` and failure probability `δ`.
    pub fn derive(n: usize, c: f64, delta: f64) -> Self {
        assert!(c > 1.0, "QALSH requires c > 1, got {c}");
        assert!(delta > 0.0 && delta < 1.0);
        let w = (8.0 * c * c * c.ln() / (c * c - 1.0)).sqrt();
        // Collision probabilities at distance 1 and c.
        let p1 = 1.0 - 2.0 * normal_cdf(-w / 2.0);
        let p2 = 1.0 - 2.0 * normal_cdf(-w / (2.0 * c));
        let beta = (100.0 / n as f64).min(0.99);
        let beta_n = ((beta * n as f64).ceil() as usize).max(1);
        let eta = ((2.0 / beta).ln() / (1.0 / delta).ln()).sqrt();
        let alpha = (eta * p1 + p2) / (1.0 + eta);
        let m_raw = (((1.0 / delta).ln().sqrt() + (2.0 / beta).ln().sqrt()).powi(2)
            / (2.0 * (p1 - p2) * (p1 - p2)))
            .ceil() as usize;
        // Cap to keep index construction tractable; the cap only reduces the
        // success probability marginally for very small subsets.
        let m = m_raw.clamp(4, 96);
        let l = ((alpha * m as f64).ceil() as usize).clamp(1, m);
        Self { w, m, l, beta_n, c }
    }
}

/// A QALSH index over one (transformed) point set.
pub struct Qalsh {
    params: QalshParams,
    /// `m × dim` Gaussian hash matrix.
    hash: Matrix,
    trees: Vec<BTree>,
    n: usize,
}

impl Qalsh {
    /// Builds the per-hash B+-trees for `points` (already transformed),
    /// identified by their local indices `0..n`.
    pub fn build(
        pager: Arc<Pager>,
        points: &Matrix,
        c: f64,
        delta: f64,
        seed: u64,
    ) -> io::Result<Self> {
        let n = points.rows();
        assert!(n > 0);
        let dim = points.cols();
        let params = QalshParams::derive(n, c, delta);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut hash_data = Vec::with_capacity(params.m * dim);
        for _ in 0..params.m * dim {
            hash_data.push(rng.normal() as f32);
        }
        let hash = Matrix::from_vec(params.m, dim, hash_data);

        let mut trees = Vec::with_capacity(params.m);
        for i in 0..params.m {
            let a = hash.row(i);
            let mut pairs: Vec<(u64, u64)> = (0..n)
                .map(|j| (f64_to_key(dot(a, points.row(j))), j as u64))
                .collect();
            pairs.sort_unstable_by_key(|&(k, _)| k);
            trees.push(BTree::bulk_load(Arc::clone(&pager), pairs)?);
        }
        Ok(Self {
            params,
            hash,
            trees,
            n,
        })
    }

    /// The derived parameters.
    pub fn params(&self) -> &QalshParams {
        &self.params
    }

    /// c-ANN search driver. `verify(local_id)` must return the Euclidean
    /// distance between the point and the query in the *transformed* space;
    /// the caller accumulates whatever result set it needs (H2-ALSH tracks
    /// exact inner products). Returns the number of verified points.
    pub fn search(
        &self,
        tq: &[f32],
        k: usize,
        mut verify: impl FnMut(u32) -> io::Result<f64>,
    ) -> io::Result<usize> {
        let hq: Vec<f64> = (0..self.params.m)
            .map(|i| dot(self.hash.row(i), tq))
            .collect();

        let mut counts = vec![0u16; self.n];
        let mut seen = vec![false; self.n];
        // k smallest verified transformed distances.
        let mut knn: Vec<f64> = Vec::new();
        let mut verified = 0usize;
        let budget = self.params.beta_n + k;

        let mut r = 1.0f64;
        let mut prev_half: f64 = 0.0; // previous half-width per tree
                                      // Hash values scale with the data norm; cap rounds generously.
        for _round in 0..64 {
            let half = self.params.w * r / 2.0;
            for (i, tree) in self.trees.iter().enumerate() {
                // Scan only the annulus new to this round.
                let ranges = if prev_half == 0.0 {
                    vec![(hq[i] - half, hq[i] + half)]
                } else {
                    vec![
                        (hq[i] - half, hq[i] - prev_half),
                        (hq[i] + prev_half, hq[i] + half),
                    ]
                };
                for (lo, hi) in ranges {
                    if lo >= hi {
                        continue;
                    }
                    let (klo, khi) = (f64_to_key(lo), f64_to_key(hi));
                    for entry in tree.range(klo, khi)? {
                        let (_, id) = entry?;
                        let id = id as usize;
                        counts[id] = counts[id].saturating_add(1);
                        if counts[id] as usize >= self.params.l && !seen[id] {
                            seen[id] = true;
                            let dist = verify(id as u32)?;
                            verified += 1;
                            insert_sorted(&mut knn, dist, k);
                            if verified >= budget {
                                return Ok(verified);
                            }
                        }
                    }
                }
            }
            // Terminating condition: k verified points within c·R.
            if knn.len() >= k && knn[k - 1] <= self.params.c * r {
                return Ok(verified);
            }
            prev_half = half;
            r *= self.params.c;
        }
        Ok(verified)
    }
}

/// Keeps `buf` as the sorted list of the k smallest values seen.
fn insert_sorted(buf: &mut Vec<f64>, value: f64, k: usize) {
    let pos = buf.partition_point(|&v| v <= value);
    buf.insert(pos, value);
    if buf.len() > k {
        buf.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::dist;

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect()),
        )
    }

    #[test]
    fn params_scale_with_n() {
        let small = QalshParams::derive(1_000, 2.0, 1.0 / std::f64::consts::E);
        let large = QalshParams::derive(1_000_000, 2.0, 1.0 / std::f64::consts::E);
        assert!(large.m >= small.m);
        assert!(small.l <= small.m);
        assert!((small.w - 2.719).abs() < 0.01, "w = {}", small.w);
    }

    #[test]
    fn params_p1_exceeds_p2() {
        for &c in &[1.5f64, 2.0, 3.0] {
            let w = (8.0 * c * c * c.ln() / (c * c - 1.0)).sqrt();
            let p1 = 1.0 - 2.0 * normal_cdf(-w / 2.0);
            let p2 = 1.0 - 2.0 * normal_cdf(-w / (2.0 * c));
            assert!(p1 > p2, "c={c}");
        }
    }

    #[test]
    fn finds_near_neighbour_with_high_probability() {
        let n = 500;
        let d = 16;
        let points = random_points(n, d, 7);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let qalsh = Qalsh::build(pager, &points, 2.0, 1.0 / std::f64::consts::E, 11).unwrap();

        // Query very close to point 123: QALSH should verify it.
        let target: Vec<f32> = points.row(123).iter().map(|&v| v + 0.01).collect();
        let mut found = false;
        let mut verified_ids = Vec::new();
        qalsh
            .search(&target, 5, |id| {
                verified_ids.push(id);
                if id == 123 {
                    found = true;
                }
                Ok(dist(points.row(id as usize), &target))
            })
            .unwrap();
        assert!(found, "true NN not verified; verified = {verified_ids:?}");
    }

    #[test]
    fn respects_candidate_budget() {
        let n = 300;
        let points = random_points(n, 8, 3);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let qalsh = Qalsh::build(pager, &points, 2.0, 1.0 / std::f64::consts::E, 5).unwrap();
        let q: Vec<f32> = vec![0.0; 8];
        let verified = qalsh
            .search(&q, 10, |id| Ok(dist(points.row(id as usize), &q)))
            .unwrap();
        assert!(verified <= qalsh.params().beta_n + 10);
        assert!(verified > 0, "should verify something");
    }

    #[test]
    fn insert_sorted_keeps_k_smallest() {
        let mut buf = Vec::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            insert_sorted(&mut buf, v, 3);
        }
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }
}
