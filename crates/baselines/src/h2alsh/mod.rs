//! H2-ALSH (Huang et al., KDD 2018): homocentric-hypersphere partitioning +
//! QNF transformation + per-subset QALSH.
//!
//! Points are sorted by descending 2-norm and partitioned into subsets whose
//! norms lie in `(Mj/c0², Mj]` (homocentric hyperspheres, limiting the
//! distortion of the transformed space). Each subset gets its own QNF
//! transformation and — when large enough — a QALSH index; small subsets are
//! scanned directly. Queries visit subsets in descending `Mj`, and stop as
//! soon as the current k-th best inner product exceeds the Cauchy–Schwarz
//! bound `‖q‖·Mj` of all remaining subsets.

pub mod qalsh;
pub mod qnf;

use std::io;
use std::sync::Arc;

use promips_idistance::layout::{enc, read_blob_range, write_blob};
use promips_linalg::{dot, norm2, Matrix};
use promips_storage::{PageId, Pager};

use crate::method::{MipsMethod, Neighbor};
use qalsh::Qalsh;
use qnf::Qnf;

/// Subsets smaller than this skip QALSH and are scanned sequentially.
const BRUTE_FORCE_THRESHOLD: usize = 64;

struct Subset {
    max_norm: f64,
    /// Global point ids, descending norm (the on-disk record order).
    ids: Vec<u64>,
    orig_start: PageId,
    qalsh: Option<Qalsh>,
}

/// H2-ALSH configuration.
#[derive(Debug, Clone, Copy)]
pub struct H2AlshConfig {
    /// Norm-partition / QALSH approximation ratio `c0` (paper fixes 2.0).
    pub c0: f64,
    /// QALSH failure probability `δ`.
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for H2AlshConfig {
    fn default() -> Self {
        Self {
            c0: 2.0,
            delta: 1.0 / std::f64::consts::E,
            seed: 0xA15B,
        }
    }
}

/// A built H2-ALSH index.
pub struct H2Alsh {
    pager: Arc<Pager>,
    subsets: Vec<Subset>,
    d: usize,
    orig_pages: u64,
    hash_bytes: u64,
}

impl H2Alsh {
    /// Builds the index over `data` in the given pager.
    pub fn build(data: &Matrix, config: H2AlshConfig, pager: Arc<Pager>) -> io::Result<Self> {
        assert!(!data.is_empty());
        let n = data.rows();
        let d = data.cols();

        // Sort ids by descending norm.
        let mut order: Vec<(f64, u64)> = (0..n).map(|i| (norm2(data.row(i)), i as u64)).collect();
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        // Homocentric hypersphere partition: norms in (Mj/c0², Mj].
        let mut subsets = Vec::new();
        let mut start = 0usize;
        let mut orig_pages = 0u64;
        let mut hash_bytes = 0u64;
        let ps = pager.page_size() as u64;
        let mut seed = config.seed;
        while start < n {
            let mj = order[start].0.max(1e-12);
            let threshold = mj / (config.c0 * config.c0);
            let mut end = start + 1;
            while end < n && order[end].0 > threshold {
                end += 1;
            }
            let ids: Vec<u64> = order[start..end].iter().map(|&(_, id)| id).collect();

            // Original vectors, sequential in subset order.
            let mut blob = Vec::with_capacity(ids.len() * 4 * d);
            for &id in &ids {
                enc::put_f32s(&mut blob, data.row(id as usize));
            }
            let orig_start = write_blob(&pager, &blob)?;
            orig_pages += (blob.len() as u64).div_ceil(ps).max(1);

            // QALSH over the QNF-transformed subset (large subsets only).
            let qalsh = if ids.len() >= BRUTE_FORCE_THRESHOLD {
                let qnf = Qnf { max_norm: mj };
                let transformed = Matrix::from_rows(
                    d + 1,
                    ids.iter()
                        .map(|&id| qnf.transform_data(data.row(id as usize))),
                );
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let q = Qalsh::build(
                    Arc::clone(&pager),
                    &transformed,
                    config.c0,
                    config.delta,
                    seed,
                )?;
                hash_bytes += (q.params().m * (d + 1) * 4) as u64;
                Some(q)
            } else {
                None
            };

            subsets.push(Subset {
                max_norm: mj,
                ids,
                orig_start,
                qalsh,
            });
            start = end;
        }

        Ok(Self {
            pager,
            subsets,
            d,
            orig_pages,
            hash_bytes,
        })
    }

    /// Number of norm subsets.
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    fn fetch_orig(&self, subset: &Subset, local: u32) -> io::Result<Vec<f32>> {
        let rec = 4 * self.d;
        let bytes = read_blob_range(&self.pager, subset.orig_start, local as usize * rec, rec)?;
        let mut pos = 0;
        Ok(enc::get_f32s(&bytes, &mut pos, self.d))
    }

    fn search_impl(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>> {
        assert_eq!(q.len(), self.d);
        let qn = norm2(q);
        let mut top: Vec<Neighbor> = Vec::new(); // sorted desc by ip
        let push = |top: &mut Vec<Neighbor>, nb: Neighbor| {
            let pos = top.partition_point(|x| x.ip > nb.ip || (x.ip == nb.ip && x.id < nb.id));
            top.insert(pos, nb);
            if top.len() > k {
                top.pop();
            }
        };

        for subset in &self.subsets {
            // Early stop: Cauchy–Schwarz bound on all remaining subsets.
            if top.len() == k && top[k - 1].ip >= qn * subset.max_norm {
                break;
            }
            let qnf = Qnf {
                max_norm: subset.max_norm,
            };
            match &subset.qalsh {
                None => {
                    // Sequential scan of the subset blob.
                    let rec = 4 * self.d;
                    let blob =
                        read_blob_range(&self.pager, subset.orig_start, 0, subset.ids.len() * rec)?;
                    let mut pos = 0;
                    for &id in &subset.ids {
                        let o = enc::get_f32s(&blob, &mut pos, self.d);
                        push(&mut top, Neighbor { id, ip: dot(&o, q) });
                    }
                }
                Some(qalsh) => {
                    let (tq, lambda) = qnf.transform_query(q);
                    qalsh.search(&tq, k, |local| {
                        let o = self.fetch_orig(subset, local)?;
                        let ip = dot(&o, q);
                        push(
                            &mut top,
                            Neighbor {
                                id: subset.ids[local as usize],
                                ip,
                            },
                        );
                        Ok(qnf.sq_dist_from_ip(lambda, ip).sqrt())
                    })?;
                }
            }
        }
        Ok(top)
    }
}

impl MipsMethod for H2Alsh {
    fn name(&self) -> &'static str {
        "H2-ALSH"
    }

    fn search(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>> {
        self.search_impl(q, k)
    }

    fn index_size_bytes(&self) -> u64 {
        // Everything in the file except the raw data blobs, plus the
        // in-memory hash matrices and id tables.
        let ps = self.pager.page_size() as u64;
        let id_bytes: u64 = self.subsets.iter().map(|s| s.ids.len() as u64 * 8).sum();
        self.pager.size_bytes() - self.orig_pages * ps + self.hash_bytes + id_bytes
    }

    fn page_accesses(&self) -> u64 {
        self.pager.stats().snapshot().logical_reads
    }

    fn reset_stats(&self) {
        self.pager.stats().reset();
    }

    fn clear_cache(&self) {
        self.pager.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        // Mix norms so several subsets appear.
        Matrix::from_rows(
            d,
            (0..n).map(|i| {
                let scale = 0.25 + 4.0 * (i % 13) as f32 / 13.0;
                (0..d).map(|_| scale * rng.normal() as f32).collect()
            }),
        )
    }

    fn exact_top1(data: &Matrix, q: &[f32]) -> (u64, f64) {
        (0..data.rows())
            .map(|i| (i as u64, dot(data.row(i), q)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
    }

    #[test]
    fn partitions_respect_norm_intervals() {
        let data = random_data(400, 10, 1);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let h2 = H2Alsh::build(&data, H2AlshConfig::default(), pager).unwrap();
        assert!(h2.num_subsets() >= 1);
        for s in &h2.subsets {
            for &id in &s.ids {
                let nrm = norm2(data.row(id as usize));
                assert!(nrm <= s.max_norm + 1e-9);
                assert!(nrm > s.max_norm / 4.0 - 1e-9, "outside (M/c0², M]");
            }
        }
        // Subsets cover every point exactly once.
        let total: usize = h2.subsets.iter().map(|s| s.ids.len()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn search_quality_reasonable() {
        let data = random_data(1200, 16, 3);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let h2 = H2Alsh::build(&data, H2AlshConfig::default(), pager).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut ratio_sum = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let res = h2.search(&q, 5).unwrap();
            assert!(!res.is_empty());
            let (_, best) = exact_top1(&data, &q);
            if best > 0.0 {
                ratio_sum += (res[0].ip / best).min(1.0);
            } else {
                ratio_sum += 1.0;
            }
        }
        let mean = ratio_sum / trials as f64;
        assert!(mean > 0.8, "mean top-1 ratio {mean} too low");
    }

    #[test]
    fn search_counts_pages() {
        let data = random_data(800, 12, 5);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let h2 = H2Alsh::build(&data, H2AlshConfig::default(), pager).unwrap();
        h2.clear_cache();
        h2.reset_stats();
        let q: Vec<f32> = vec![0.3; 12];
        let _ = h2.search(&q, 10).unwrap();
        assert!(h2.page_accesses() > 0);
        assert!(h2.index_size_bytes() > 0);
    }

    #[test]
    fn results_have_unique_ids() {
        let data = random_data(600, 8, 7);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let h2 = H2Alsh::build(&data, H2AlshConfig::default(), pager).unwrap();
        let q: Vec<f32> = vec![1.0; 8];
        let res = h2.search(&q, 20).unwrap();
        let mut ids: Vec<u64> = res.iter().map(|n| n.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
