//! The common interface the experiment harness drives.

use std::io;

/// One returned neighbour: id and exact inner product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Point id (dataset row).
    pub id: u64,
    /// Exact inner product with the query.
    pub ip: f64,
}

/// Uniform interface over ProMIPS and the three baselines so the figure
/// harness can sweep methods generically.
pub trait MipsMethod {
    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// c-k-AMIP search: top-k by inner product (approximate).
    fn search(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>>;

    /// The method's index size in bytes (paper Fig. 4a).
    fn index_size_bytes(&self) -> u64;

    /// Logical page reads since the last reset (paper Fig. 7).
    fn page_accesses(&self) -> u64;

    /// Resets the page-access counters.
    fn reset_stats(&self);

    /// Drops buffered pages so the next query measures cold I/O.
    fn clear_cache(&self);
}

/// Adapter giving [`promips_core::ProMips`] the harness interface.
pub struct ProMipsMethod {
    inner: promips_core::ProMips,
}

impl ProMipsMethod {
    /// Wraps a built ProMIPS index.
    pub fn new(inner: promips_core::ProMips) -> Self {
        Self { inner }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &promips_core::ProMips {
        &self.inner
    }
}

impl MipsMethod for ProMipsMethod {
    fn name(&self) -> &'static str {
        "ProMIPS"
    }

    fn search(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>> {
        Ok(self
            .inner
            .search(q, k)?
            .items
            .into_iter()
            .map(|i| Neighbor { id: i.id, ip: i.ip })
            .collect())
    }

    fn index_size_bytes(&self) -> u64 {
        self.inner.index_size_bytes()
    }

    fn page_accesses(&self) -> u64 {
        self.inner.access_stats().logical_reads
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn clear_cache(&self) {
        self.inner.clear_cache();
    }
}

/// Merges per-thread top-k lists into a global top-k (by ip desc, id asc).
pub(crate) fn merge_topk(mut lists: Vec<Vec<Neighbor>>, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = lists.drain(..).flatten().collect();
    all.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_topk_orders_and_truncates() {
        let lists = vec![
            vec![Neighbor { id: 1, ip: 5.0 }, Neighbor { id: 2, ip: 1.0 }],
            vec![Neighbor { id: 3, ip: 9.0 }],
            vec![Neighbor { id: 4, ip: 5.0 }],
        ];
        let top = merge_topk(lists, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].id, 3);
        // Tie at ip=5.0 broken by id.
        assert_eq!(top[1].id, 1);
        assert_eq!(top[2].id, 4);
    }
}
