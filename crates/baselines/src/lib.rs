//! Benchmark methods from the ProMIPS evaluation (paper Section VIII-A1).
//!
//! * [`h2alsh`] — **H2-ALSH** (Huang et al., KDD 2018): homocentric
//!   hypersphere norm partitioning + exact QNF asymmetric transformation,
//!   solving the per-subset NN problem with a disk-resident **QALSH**
//!   (query-aware LSH over per-hash B+-trees), as the paper's
//!   implementation note prescribes.
//! * [`rangelsh`] — **Norm-Ranging LSH** (Yan et al., NeurIPS 2018): 32
//!   norm-range sub-datasets, Simple-LSH symmetric transformation, 16-bit
//!   SimHash codes, and the single-table multi-probe strategy that ranks
//!   buckets across sub-datasets.
//! * [`pq`] — **PQ-based** (after Kalantidis & Avrithis, CVPR 2014): the
//!   QNF MIPS→NN reduction followed by an IVF-PQ index (16 sub-spaces ×
//!   256 centroids, 16 probed cells), ADC scanning and exact re-ranking.
//! * [`exact`] — multi-threaded exact scan, used for ground truth.
//!
//! All disk-resident methods read points and index structures through
//! [`promips_storage::Pager`]s, so their Page Access numbers are directly
//! comparable with ProMIPS's (Fig. 7).

pub mod exact;
pub mod fetch;
pub mod h2alsh;
pub mod method;
pub mod pq;
pub mod rangelsh;

pub use exact::ExactScan;
pub use h2alsh::H2Alsh;
pub use method::{MipsMethod, Neighbor, ProMipsMethod};
pub use pq::PqMips;
pub use rangelsh::RangeLsh;
