//! PQ-based MIPS (the paper's fourth method, after Kalantidis & Avrithis,
//! CVPR 2014): QNF MIPS→NN reduction + IVF product quantization.
//!
//! Pipeline: the whole dataset is QNF-transformed with the **global**
//! maximum norm (one asymmetric transformation, no probability guarantee —
//! the paper includes this method as the "no guarantee" comparison point).
//! A coarse k-means quantizer assigns each transformed point to a cell;
//! residuals are product-quantized over 16 sub-spaces with 256 centroids
//! each (the paper's settings); each cell's codes form an inverted list
//! stored sequentially on disk. A query probes its 16 nearest cells,
//! scans their code lists with asymmetric-distance (ADC) lookup tables,
//! keeps the best candidates, and re-ranks them by exact inner product.
//!
//! Substitution note (DESIGN.md §3): LOPQ's per-cell rotation matrices are
//! replaced by plain per-cell residual PQ. The rotations improve recall a
//! few percent at considerable training cost; index-size/page-access shapes
//! — what Figs. 4 and 7 compare — are unaffected.

use std::io;
use std::sync::Arc;

use promips_cluster::{kmeans, KMeansConfig};
use promips_idistance::layout::{enc, read_blob, write_blob};
use promips_linalg::{dot, norm2, sq_dist, Matrix};
use promips_stats::Xoshiro256pp;
use promips_storage::{PageId, Pager};

use crate::fetch::fetch_f32_records;
use crate::h2alsh::qnf::Qnf;
use crate::method::{MipsMethod, Neighbor};

/// Configuration (defaults are the paper's settings).
#[derive(Debug, Clone, Copy)]
pub struct PqConfig {
    /// Number of PQ sub-spaces (paper: 16).
    pub subspaces: usize,
    /// Centroids per sub-space (paper: 256; clamped to the training size).
    pub centroids: usize,
    /// Cells probed at query time (paper: 16).
    pub probe_cells: usize,
    /// Number of coarse cells; `None` → `clamp(√n, 8, 512)`.
    pub cells: Option<usize>,
    /// Training sample size for the quantizers.
    pub train_sample: usize,
    /// Re-rank depth multiplier: `max(rerank_mult·k, 200)` ADC candidates
    /// get exact verification.
    pub rerank_mult: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        Self {
            subspaces: 16,
            centroids: 256,
            probe_cells: 16,
            cells: None,
            train_sample: 20_000,
            rerank_mult: 20,
            seed: 0x9A12,
        }
    }
}

struct Cell {
    /// Global ids in record order.
    ids: Vec<u64>,
    codes_start: PageId,
    orig_start: PageId,
}

/// A built IVF-PQ MIPS index.
pub struct PqMips {
    pager: Arc<Pager>,
    config: PqConfig,
    d: usize,
    /// Padded transformed dimensionality (multiple of `subspaces`).
    dim_p: usize,
    sub_dim: usize,
    qnf: Qnf,
    /// `cells × dim_p` coarse centroids.
    coarse: Matrix,
    /// One `centroids × sub_dim` codebook per sub-space.
    codebooks: Vec<Matrix>,
    cells: Vec<Cell>,
    code_pages: u64,
}

impl PqMips {
    /// Builds the index over `data`.
    pub fn build(data: &Matrix, config: PqConfig, pager: Arc<Pager>) -> io::Result<Self> {
        assert!(!data.is_empty());
        let n = data.rows();
        let d = data.cols();
        let subspaces = config.subspaces.max(1);
        let dim_p = (d + 1).div_ceil(subspaces) * subspaces;
        let sub_dim = dim_p / subspaces;
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);

        // Global QNF transformation (single M = max norm).
        let max_norm = (0..n)
            .map(|i| norm2(data.row(i)))
            .fold(0.0, f64::max)
            .max(1e-12);
        let qnf = Qnf { max_norm };
        let transform = |row: &[f32]| -> Vec<f32> {
            let mut t = qnf.transform_data(row);
            t.resize(dim_p, 0.0);
            t
        };

        // Coarse quantizer trained on a sample, assigned over all points.
        let n_cells = config
            .cells
            .unwrap_or_else(|| ((n as f64).sqrt() as usize).clamp(8, 512))
            .min(n);
        let sample_size = config.train_sample.min(n);
        let sample_idx = rng.sample_indices(n, sample_size);
        let sample = Matrix::from_rows(dim_p, sample_idx.iter().map(|&i| transform(data.row(i))));
        let all_sample: Vec<usize> = (0..sample.rows()).collect();
        let mut km = KMeansConfig::new(n_cells, rng.next_u64());
        km.max_iters = 12;
        let coarse_km = kmeans(&sample, &all_sample, &km);
        let coarse = coarse_km.centroids;
        let n_cells = coarse.rows();

        // Assign every point to its nearest cell; collect residual sample
        // for the codebooks.
        let mut assignment = vec![0u32; n];
        for (i, slot) in assignment.iter_mut().enumerate() {
            let t = transform(data.row(i));
            let mut best = (f64::INFINITY, 0u32);
            for c in 0..n_cells {
                let dist = sq_dist(&t, coarse.row(c));
                if dist < best.0 {
                    best = (dist, c as u32);
                }
            }
            *slot = best.1;
        }

        // Sub-space codebooks trained on sampled residuals.
        let centroids = config.centroids.clamp(2, sample_size.max(2));
        let mut codebooks = Vec::with_capacity(subspaces);
        let residual_sample: Vec<Vec<f32>> = sample_idx
            .iter()
            .map(|&i| {
                let t = transform(data.row(i));
                let c = coarse.row(assignment[i] as usize);
                t.iter().zip(c).map(|(&a, &b)| a - b).collect()
            })
            .collect();
        for s in 0..subspaces {
            let sub = Matrix::from_rows(
                sub_dim,
                residual_sample
                    .iter()
                    .map(|r| r[s * sub_dim..(s + 1) * sub_dim].to_vec()),
            );
            let all: Vec<usize> = (0..sub.rows()).collect();
            let mut km = KMeansConfig::new(centroids, rng.next_u64());
            km.max_iters = 10;
            codebooks.push(kmeans(&sub, &all, &km).centroids);
        }

        // Encode per cell; write codes + originals sequentially.
        let ps = pager.page_size() as u64;
        let mut members: Vec<Vec<u64>> = vec![Vec::new(); n_cells];
        for (i, &c) in assignment.iter().enumerate() {
            members[c as usize].push(i as u64);
        }
        let mut cells = Vec::with_capacity(n_cells);
        let mut code_pages = 0u64;
        for (c, ids) in members.into_iter().enumerate() {
            if ids.is_empty() {
                cells.push(Cell {
                    ids,
                    codes_start: 0,
                    orig_start: 0,
                });
                continue;
            }
            let mut codes_blob = Vec::with_capacity(ids.len() * subspaces);
            let mut orig_blob = Vec::with_capacity(ids.len() * 4 * d);
            for &id in &ids {
                let t = transform(data.row(id as usize));
                let center = coarse.row(c);
                for (s, cb) in codebooks.iter().enumerate().take(subspaces) {
                    let r: Vec<f32> = (s * sub_dim..(s + 1) * sub_dim)
                        .map(|j| t[j] - center[j])
                        .collect();
                    let mut best = (f64::INFINITY, 0usize);
                    for e in 0..cb.rows() {
                        let dist = sq_dist(&r, cb.row(e));
                        if dist < best.0 {
                            best = (dist, e);
                        }
                    }
                    codes_blob.push(best.1 as u8);
                }
                enc::put_f32s(&mut orig_blob, data.row(id as usize));
            }
            let codes_start = write_blob(&pager, &codes_blob)?;
            let orig_start = write_blob(&pager, &orig_blob)?;
            code_pages += (codes_blob.len() as u64).div_ceil(ps).max(1);
            cells.push(Cell {
                ids,
                codes_start,
                orig_start,
            });
        }

        Ok(Self {
            pager,
            config,
            d,
            dim_p,
            sub_dim,
            qnf,
            coarse,
            codebooks,
            cells,
            code_pages,
        })
    }

    /// Number of coarse cells.
    pub fn num_cells(&self) -> usize {
        self.coarse.rows()
    }

    fn search_impl(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>> {
        assert_eq!(q.len(), self.d);
        let subspaces = self.config.subspaces;
        let (mut tq, _lambda) = self.qnf.transform_query(q);
        tq.resize(self.dim_p, 0.0);

        // Nearest cells.
        let mut cell_d: Vec<(f64, usize)> = (0..self.coarse.rows())
            .map(|c| (sq_dist(&tq, self.coarse.row(c)), c))
            .collect();
        cell_d.sort_by(|a, b| a.0.total_cmp(&b.0));
        let probe = self.config.probe_cells.min(cell_d.len());

        // ADC scan over the probed cells' code lists.
        let rerank = (self.config.rerank_mult * k).max(200);
        // (approx_sq_dist, cell, local) — keep the `rerank` smallest.
        let mut cand: Vec<(f64, usize, u32)> = Vec::new();
        for &(_, c) in cell_d.iter().take(probe) {
            let cell = &self.cells[c];
            if cell.ids.is_empty() {
                continue;
            }
            // Per-cell ADC tables from the query residual.
            let center = self.coarse.row(c);
            let rq: Vec<f32> = tq.iter().zip(center).map(|(&a, &b)| a - b).collect();
            let mut tables: Vec<Vec<f64>> = Vec::with_capacity(subspaces);
            for s in 0..subspaces {
                let cb = &self.codebooks[s];
                let sub = &rq[s * self.sub_dim..(s + 1) * self.sub_dim];
                tables.push((0..cb.rows()).map(|e| sq_dist(sub, cb.row(e))).collect());
            }
            let codes = read_blob(&self.pager, cell.codes_start, cell.ids.len() * subspaces)?;
            for (local, rec) in codes.chunks_exact(subspaces).enumerate() {
                let mut approx = 0.0;
                for (s, &code) in rec.iter().enumerate() {
                    approx += tables[s][code as usize];
                }
                insert_bounded(&mut cand, (approx, c, local as u32), rerank);
            }
        }

        // Re-rank by exact inner product, batching fetches per cell.
        cand.sort_by(|a, b| a.1.cmp(&b.1).then(a.2.cmp(&b.2)));
        let mut top: Vec<Neighbor> = Vec::new();
        let mut i = 0;
        while i < cand.len() {
            let c = cand[i].1;
            let mut offsets = Vec::new();
            while i < cand.len() && cand[i].1 == c {
                offsets.push(cand[i].2);
                i += 1;
            }
            let cell = &self.cells[c];
            let origs = fetch_f32_records(&self.pager, cell.orig_start, self.d, &offsets)?;
            for (&local, orig) in offsets.iter().zip(&origs) {
                let ip = dot(orig, q);
                let nb = Neighbor {
                    id: cell.ids[local as usize],
                    ip,
                };
                let pos = top.partition_point(|x| x.ip > nb.ip || (x.ip == nb.ip && x.id < nb.id));
                top.insert(pos, nb);
                if top.len() > k {
                    top.pop();
                }
            }
        }
        Ok(top)
    }
}

/// Keeps `buf` as the `cap` smallest entries by the first tuple field.
fn insert_bounded(buf: &mut Vec<(f64, usize, u32)>, item: (f64, usize, u32), cap: usize) {
    if buf.len() == cap {
        // Quick reject against the current maximum (last after sort step
        // below keeps buf unsorted; track max lazily).
        if let Some(max) = buf.iter().map(|e| e.0).reduce(f64::max) {
            if item.0 >= max {
                return;
            }
        }
        // Remove the current max.
        if let Some((mi, _)) = buf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
        {
            buf.swap_remove(mi);
        }
    }
    buf.push(item);
}

impl MipsMethod for PqMips {
    fn name(&self) -> &'static str {
        "PQ-Based"
    }

    fn search(&self, q: &[f32], k: usize) -> io::Result<Vec<Neighbor>> {
        self.search_impl(q, k)
    }

    fn index_size_bytes(&self) -> u64 {
        let ps = self.pager.page_size() as u64;
        let coarse = (self.coarse.rows() * self.coarse.cols() * 4) as u64;
        let books: u64 = self
            .codebooks
            .iter()
            .map(|b| (b.rows() * b.cols() * 4) as u64)
            .sum();
        let ids: u64 = self.cells.iter().map(|c| c.ids.len() as u64 * 8).sum();
        self.code_pages * ps + coarse + books + ids
    }

    fn page_accesses(&self) -> u64 {
        self.pager.stats().snapshot().logical_reads
    }

    fn reset_stats(&self) {
        self.pager.stats().reset();
    }

    fn clear_cache(&self) {
        self.pager.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect()),
        )
    }

    fn small_config(seed: u64) -> PqConfig {
        PqConfig {
            subspaces: 4,
            centroids: 16,
            probe_cells: 4,
            cells: Some(8),
            train_sample: 500,
            rerank_mult: 20,
            seed,
        }
    }

    #[test]
    fn cells_partition_dataset() {
        let data = random_data(400, 10, 1);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let pq = PqMips::build(&data, small_config(1), pager).unwrap();
        let total: usize = pq.cells.iter().map(|c| c.ids.len()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn search_quality_reasonable() {
        let data = random_data(800, 12, 3);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let pq = PqMips::build(&data, small_config(3), pager).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ratio_sum = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let q: Vec<f32> = (0..12).map(|_| rng.normal() as f32).collect();
            let res = pq.search(&q, 5).unwrap();
            assert!(!res.is_empty());
            let best = (0..800)
                .map(|i| dot(data.row(i), &q))
                .fold(f64::NEG_INFINITY, f64::max);
            if best > 0.0 {
                ratio_sum += (res[0].ip / best).min(1.0);
            } else {
                ratio_sum += 1.0;
            }
        }
        let mean = ratio_sum / trials as f64;
        assert!(mean > 0.8, "mean top-1 ratio {mean} too low");
    }

    #[test]
    fn insert_bounded_keeps_smallest() {
        let mut buf = Vec::new();
        for (i, v) in [9.0, 1.0, 5.0, 3.0, 7.0, 2.0].iter().enumerate() {
            insert_bounded(&mut buf, (*v, 0, i as u32), 3);
        }
        let mut dists: Vec<f64> = buf.iter().map(|e| e.0).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pages_and_size_accounted() {
        let data = random_data(500, 8, 7);
        let pager = Arc::new(Pager::in_memory(4096, 1 << 14));
        let pq = PqMips::build(&data, small_config(7), pager).unwrap();
        pq.clear_cache();
        pq.reset_stats();
        let _ = pq.search(&[0.4; 8], 10).unwrap();
        assert!(pq.page_accesses() > 0);
        assert!(pq.index_size_bytes() > 0);
    }
}
