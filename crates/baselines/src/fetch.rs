//! Batched record fetches with page de-duplication.
//!
//! Hash-bucket and PQ-candidate verification reads scattered records from a
//! sequential blob; reading each covering page once per batch mirrors how a
//! buffered scan would hit the disk and keeps the Page Access metric honest
//! (the same page is not billed twice within one batch).

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use promips_storage::{PageBuf, PageId, Pager};

/// Fetches `rec_floats`-float records at the given record offsets from the
/// blob starting at `start`. Returns vectors aligned with `offsets`.
pub fn fetch_f32_records(
    pager: &Pager,
    start: PageId,
    rec_floats: usize,
    offsets: &[u32],
) -> io::Result<Vec<Vec<f32>>> {
    let rec = rec_floats * 4;
    let ps = pager.page_size();

    let mut pages: Vec<u64> = Vec::new();
    for &o in offsets {
        let lo = o as usize * rec;
        let hi = lo + rec - 1;
        for p in (lo / ps)..=(hi / ps) {
            pages.push(p as u64);
        }
    }
    pages.sort_unstable();
    pages.dedup();
    let mut cache: HashMap<u64, Arc<PageBuf>> = HashMap::with_capacity(pages.len());
    for p in pages {
        cache.insert(p, pager.read(start + p)?);
    }

    let mut out = Vec::with_capacity(offsets.len());
    for &o in offsets {
        let lo = o as usize * rec;
        let mut bytes = Vec::with_capacity(rec);
        let mut cursor = lo;
        while cursor < lo + rec {
            let page_idx = (cursor / ps) as u64;
            let in_page = cursor % ps;
            let take = (ps - in_page).min(lo + rec - cursor);
            bytes.extend_from_slice(&cache[&page_idx].as_slice()[in_page..in_page + take]);
            cursor += take;
        }
        let mut v = Vec::with_capacity(rec_floats);
        for chunk in bytes.chunks_exact(4) {
            v.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_idistance::layout::{enc, write_blob};

    #[test]
    fn fetches_correct_records() {
        let pager = Pager::in_memory(64, 128);
        let records: Vec<Vec<f32>> = (0..50)
            .map(|i| vec![i as f32, i as f32 * 2.0, -(i as f32)])
            .collect();
        let mut blob = Vec::new();
        for r in &records {
            enc::put_f32s(&mut blob, r);
        }
        let start = write_blob(&pager, &blob).unwrap();
        let got = fetch_f32_records(&pager, start, 3, &[0, 7, 49, 7]).unwrap();
        assert_eq!(got[0], records[0]);
        assert_eq!(got[1], records[7]);
        assert_eq!(got[2], records[49]);
        assert_eq!(got[3], records[7]);
    }

    #[test]
    fn dedupes_page_reads() {
        let pager = Pager::in_memory(64, 128);
        // 16 records of 4 floats = 16 bytes each; 4 records per page.
        let mut blob = Vec::new();
        for i in 0..16 {
            enc::put_f32s(&mut blob, &[i as f32; 4]);
        }
        let start = write_blob(&pager, &blob).unwrap();
        pager.stats().reset();
        // Offsets 0..3 share page 0.
        let _ = fetch_f32_records(&pager, start, 4, &[0, 1, 2, 3]).unwrap();
        assert_eq!(pager.stats().snapshot().logical_reads, 1);
    }
}
