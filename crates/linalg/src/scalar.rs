//! Portable scalar kernels — the reference implementations and the runtime
//! fallback on targets without a SIMD path.
//!
//! All reductions accumulate in `f64` over exactly-converted `f32` inputs
//! (every `f32` is representable in `f64`, so the only rounding happens in
//! the `f64` additions). The 4-way unrolling both helps the auto-vectorizer
//! and fixes an accumulation *shape* (four partial sums + tail) that the
//! explicit SIMD kernels reproduce closely; see [`crate::dispatch`] for the
//! cross-backend tolerance contract.

/// Inner product `⟨a, b⟩` with `f64` accumulation.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] as f64 * cb[0] as f64;
        acc[1] += ca[1] as f64 * cb[1] as f64;
        acc[2] += ca[2] as f64 * cb[2] as f64;
        acc[3] += ca[3] as f64 * cb[3] as f64;
    }
    let mut tail = 0.0;
    for (&x, &y) in a_rest.iter().zip(b_rest) {
        tail += x as f64 * y as f64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared Euclidean norm `‖a‖²`.
pub fn sq_norm2(a: &[f32]) -> f64 {
    dot(a, a)
}

/// 1-norm `‖a‖₁ = Σ|aᵢ|`.
pub fn norm1(a: &[f32]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    let (a4, rest) = a.split_at(chunks * 4);
    for c in a4.chunks_exact(4) {
        acc[0] += c[0].abs() as f64;
        acc[1] += c[1].abs() as f64;
        acc[2] += c[2].abs() as f64;
        acc[3] += c[3].abs() as f64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + rest.iter().map(|x| x.abs() as f64).sum::<f64>()
}

/// Squared Euclidean distance `dis²(a, b)`.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist: dimension mismatch");
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let d0 = ca[0] as f64 - cb[0] as f64;
        let d1 = ca[1] as f64 - cb[1] as f64;
        let d2 = ca[2] as f64 - cb[2] as f64;
        let d3 = ca[3] as f64 - cb[3] as f64;
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0;
    for (&x, &y) in a_rest.iter().zip(b_rest) {
        let d = x as f64 - y as f64;
        tail += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Four simultaneous inner products `⟨aᵢ, b⟩` — the blocked primitive
/// behind multi-row matvec, `gemm_nt`, and batched candidate verification.
/// All five slices must have equal length.
///
/// The portable version is simply four [`dot`]s: interleaving the four
/// accumulations in one loop defeats the compiler's vectorizer and measures
/// ~2× slower than running the well-shaped single-row kernel four times.
pub fn dot4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    [dot(a0, b), dot(a1, b), dot(a2, b), dot(a3, b)]
}

/// Four simultaneous squared distances `dis²(aᵢ, b)` — the blocked primitive
/// behind the projected-arena annulus scan, where four contiguous rows are
/// filtered against one projected query per call. All five slices must have
/// equal length.
///
/// Like [`dot4`], the portable version runs the well-shaped single-row
/// kernel four times rather than interleaving the accumulations.
pub fn sq_dist4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    [
        sq_dist(a0, b),
        sq_dist(a1, b),
        sq_dist(a2, b),
        sq_dist(a3, b),
    ]
}

// --- 8-bit quantized (SQ8) kernels ------------------------------------------
//
// The quantized filter tier stores vectors as unsigned 8-bit codes
// (`code = round((x − min) / scale)`), so its reductions are *exact integer
// arithmetic*: every backend returns bit-identical sums, and the parity
// contract for these kernels is equality, not a tolerance. Accumulation is
// `u32`/`i32`, which is exact for lengths up to 2¹⁵ (the worst-case per-term
// magnitude is 255² = 65 025) — far beyond the projected dimensionality
// `m ≤ 64` these kernels serve.

/// Squared Euclidean distance between two u8 code vectors,
/// `Σ (aᵢ − bᵢ)²` with exact `u32` accumulation.
pub fn sq_dist_i8(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist_i8: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as i32 - y as i32;
            (d * d) as u32
        })
        .sum()
}

/// Inner product of a u8 code vector with an i8 code vector,
/// `Σ aᵢ·bᵢ` with exact `i32` accumulation.
pub fn dot_i8(a: &[u8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8: dimension mismatch");
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// Four simultaneous quantized squared distances `Σ (aᵢⱼ − bⱼ)²` — the
/// blocked primitive behind the quantized annulus filter (four contiguous
/// code rows against one quantized query per call). All five slices must
/// have equal length.
pub fn sq_dist4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[u8]) -> [u32; 4] {
    [
        sq_dist_i8(a0, b),
        sq_dist_i8(a1, b),
        sq_dist_i8(a2, b),
        sq_dist_i8(a3, b),
    ]
}

/// Four simultaneous quantized inner products `Σ aᵢⱼ·bⱼ` against a shared
/// signed query code vector. All five slices must have equal length.
pub fn dot4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[i8]) -> [i32; 4] {
    [dot_i8(a0, b), dot_i8(a1, b), dot_i8(a2, b), dot_i8(a3, b)]
}
