//! AVX-512F kernels for x86-64.
//!
//! Same structure and numerical contract as [`crate::x86`] (exact `f32 →
//! f64` widening, `f64` FMA accumulation), but with 8-wide `f64` vectors:
//! one `vcvtps2pd zmm, ymm` widens 8 floats at a time, halving the
//! conversion µop count that bounds the AVX2 path. Horizontal reduction
//! uses `_mm512_reduce_add_pd` (a shuffle tree, order fixed per width), so
//! results can differ from the other backends by O(ε) — covered by the
//! tolerance contract in [`crate::dispatch`].
//!
//! Safety: reachable only through the dispatch table, which installs these
//! kernels strictly after `is_x86_feature_detected!("avx512f")` and
//! `("fma")` both succeed.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Widens 8 packed `f32`s to one 8-wide `f64` vector.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn widen8(p: *const f32) -> __m512d {
    _mm512_cvtps_pd(_mm256_loadu_ps(p))
}

#[target_feature(enable = "avx512f")]
unsafe fn dot_body(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    // Soundness: these bodies do raw pointer reads, so never trust one
    // slice's length for the other — clamp to the shorter operand (defined
    // truncation, like the scalar fallback) instead of reading out of
    // bounds if a caller slips past the debug assert in release builds.
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = [_mm512_setzero_pd(); 4];
    let blocks = n / 32;
    for i in 0..blocks {
        let base = i * 32;
        for (lane, slot) in acc.iter_mut().enumerate() {
            let off = base + lane * 8;
            *slot = _mm512_fmadd_pd(widen8(ap.add(off)), widen8(bp.add(off)), *slot);
        }
    }
    let mut i = blocks * 32;
    while i + 8 <= n {
        acc[0] = _mm512_fmadd_pd(widen8(ap.add(i)), widen8(bp.add(i)), acc[0]);
        i += 8;
    }
    let mut sum = _mm512_reduce_add_pd(_mm512_add_pd(
        _mm512_add_pd(acc[0], acc[1]),
        _mm512_add_pd(acc[2], acc[3]),
    ));
    for j in i..n {
        sum += *ap.add(j) as f64 * *bp.add(j) as f64;
    }
    sum
}

#[target_feature(enable = "avx512f")]
unsafe fn sq_norm2_body(a: &[f32]) -> f64 {
    let n = a.len();
    let ap = a.as_ptr();
    let mut acc = [_mm512_setzero_pd(); 4];
    let blocks = n / 32;
    for i in 0..blocks {
        let base = i * 32;
        for (lane, slot) in acc.iter_mut().enumerate() {
            let v = widen8(ap.add(base + lane * 8));
            *slot = _mm512_fmadd_pd(v, v, *slot);
        }
    }
    let mut i = blocks * 32;
    while i + 8 <= n {
        let v = widen8(ap.add(i));
        acc[0] = _mm512_fmadd_pd(v, v, acc[0]);
        i += 8;
    }
    let mut sum = _mm512_reduce_add_pd(_mm512_add_pd(
        _mm512_add_pd(acc[0], acc[1]),
        _mm512_add_pd(acc[2], acc[3]),
    ));
    for j in i..n {
        let x = *ap.add(j) as f64;
        sum += x * x;
    }
    sum
}

#[target_feature(enable = "avx512f")]
unsafe fn sq_dist_body(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist: dimension mismatch");
    // Soundness: these bodies do raw pointer reads, so never trust one
    // slice's length for the other — clamp to the shorter operand (defined
    // truncation, like the scalar fallback) instead of reading out of
    // bounds if a caller slips past the debug assert in release builds.
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = [_mm512_setzero_pd(); 4];
    let blocks = n / 32;
    for i in 0..blocks {
        let base = i * 32;
        for (lane, slot) in acc.iter_mut().enumerate() {
            let off = base + lane * 8;
            let d = _mm512_sub_pd(widen8(ap.add(off)), widen8(bp.add(off)));
            *slot = _mm512_fmadd_pd(d, d, *slot);
        }
    }
    let mut i = blocks * 32;
    while i + 8 <= n {
        let d = _mm512_sub_pd(widen8(ap.add(i)), widen8(bp.add(i)));
        acc[0] = _mm512_fmadd_pd(d, d, acc[0]);
        i += 8;
    }
    let mut sum = _mm512_reduce_add_pd(_mm512_add_pd(
        _mm512_add_pd(acc[0], acc[1]),
        _mm512_add_pd(acc[2], acc[3]),
    ));
    for j in i..n {
        let d = *ap.add(j) as f64 - *bp.add(j) as f64;
        sum += d * d;
    }
    sum
}

#[target_feature(enable = "avx512f")]
unsafe fn norm1_body(a: &[f32]) -> f64 {
    let n = a.len();
    let ap = a.as_ptr();
    let mut acc = [_mm512_setzero_pd(); 4];
    let blocks = n / 32;
    for i in 0..blocks {
        let base = i * 32;
        for (lane, slot) in acc.iter_mut().enumerate() {
            *slot = _mm512_add_pd(*slot, _mm512_abs_pd(widen8(ap.add(base + lane * 8))));
        }
    }
    let mut i = blocks * 32;
    while i + 8 <= n {
        acc[0] = _mm512_add_pd(acc[0], _mm512_abs_pd(widen8(ap.add(i))));
        i += 8;
    }
    let mut sum = _mm512_reduce_add_pd(_mm512_add_pd(
        _mm512_add_pd(acc[0], acc[1]),
        _mm512_add_pd(acc[2], acc[3]),
    ));
    for j in i..n {
        sum += (*ap.add(j)).abs() as f64;
    }
    sum
}

#[target_feature(enable = "avx512f")]
unsafe fn dot4_body(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "dot4: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    // One widened load of `b` feeds four FMAs.
    let mut acc = [_mm512_setzero_pd(); 4];
    let chunks = n / 8;
    for i in 0..chunks {
        let vb = widen8(bp.add(i * 8));
        for (r, &rp) in rows.iter().enumerate() {
            acc[r] = _mm512_fmadd_pd(widen8(rp.add(i * 8)), vb, acc[r]);
        }
    }
    let mut out = [
        _mm512_reduce_add_pd(acc[0]),
        _mm512_reduce_add_pd(acc[1]),
        _mm512_reduce_add_pd(acc[2]),
        _mm512_reduce_add_pd(acc[3]),
    ];
    for i in chunks * 8..n {
        let x = *bp.add(i) as f64;
        for (r, &rp) in rows.iter().enumerate() {
            out[r] += *rp.add(i) as f64 * x;
        }
    }
    out
}

#[target_feature(enable = "avx512f")]
unsafe fn sq_dist4_body(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "sq_dist4: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    // One widened load of `b` feeds four sub+FMA chains.
    let mut acc = [_mm512_setzero_pd(); 4];
    let chunks = n / 8;
    for i in 0..chunks {
        let vb = widen8(bp.add(i * 8));
        for (r, &rp) in rows.iter().enumerate() {
            let d = _mm512_sub_pd(widen8(rp.add(i * 8)), vb);
            acc[r] = _mm512_fmadd_pd(d, d, acc[r]);
        }
    }
    let mut out = [
        _mm512_reduce_add_pd(acc[0]),
        _mm512_reduce_add_pd(acc[1]),
        _mm512_reduce_add_pd(acc[2]),
        _mm512_reduce_add_pd(acc[3]),
    ];
    for i in chunks * 8..n {
        let x = *bp.add(i) as f64;
        for (r, &rp) in rows.iter().enumerate() {
            let d = *rp.add(i) as f64 - x;
            out[r] += d * d;
        }
    }
    out
}

// --- 8-bit quantized (SQ8) kernels ------------------------------------------
//
// 512-bit versions of the integer tier in [`crate::x86`]: 32 u8 codes widen
// to i16 per `vpmovzxbw`, reduce through the non-saturating `vpmaddwd`
// (see the AVX2 file for why `maddubs` is rejected), and accumulate in i32
// lanes. These need AVX-512BW (512-bit integer widen/madd), which the
// dispatcher's `avx512f` gate does not imply — `dispatch` detects BW once
// at table-selection time and installs these only when present (the AVX2
// bodies otherwise), so hypothetical F-without-BW silicon stays sound with
// zero per-call cost.

/// Widens 32 packed u8 codes to 32 i16 lanes.
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn widen32_u8(p: *const u8) -> __m512i {
    _mm512_cvtepu8_epi16(_mm256_loadu_si256(p as *const __m256i))
}

#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn sq_dist4_i8_body(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[u8]) -> [u32; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "sq_dist4_i8: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    let mut acc = [_mm512_setzero_si512(); 4];
    let chunks = n / 32;
    for i in 0..chunks {
        let vb = widen32_u8(bp.add(i * 32));
        for (r, &rp) in rows.iter().enumerate() {
            let d = _mm512_sub_epi16(widen32_u8(rp.add(i * 32)), vb);
            acc[r] = _mm512_add_epi32(acc[r], _mm512_madd_epi16(d, d));
        }
    }
    let mut out = [
        _mm512_reduce_add_epi32(acc[0]) as u32,
        _mm512_reduce_add_epi32(acc[1]) as u32,
        _mm512_reduce_add_epi32(acc[2]) as u32,
        _mm512_reduce_add_epi32(acc[3]) as u32,
    ];
    for i in chunks * 32..n {
        let x = *bp.add(i) as i32;
        for (r, &rp) in rows.iter().enumerate() {
            let d = *rp.add(i) as i32 - x;
            out[r] += (d * d) as u32;
        }
    }
    out
}

#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn dot4_i8_body(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[i8]) -> [i32; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "dot4_i8: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    let mut acc = [_mm512_setzero_si512(); 4];
    let chunks = n / 32;
    for i in 0..chunks {
        let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(bp.add(i * 32) as *const __m256i));
        for (r, &rp) in rows.iter().enumerate() {
            acc[r] = _mm512_add_epi32(acc[r], _mm512_madd_epi16(widen32_u8(rp.add(i * 32)), vb));
        }
    }
    let mut out = [
        _mm512_reduce_add_epi32(acc[0]),
        _mm512_reduce_add_epi32(acc[1]),
        _mm512_reduce_add_epi32(acc[2]),
        _mm512_reduce_add_epi32(acc[3]),
    ];
    for i in chunks * 32..n {
        let x = *bp.add(i) as i32;
        for (r, &rp) in rows.iter().enumerate() {
            out[r] += *rp.add(i) as i32 * x;
        }
    }
    out
}

#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn dot_i8_body(a: &[u8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8: dimension mismatch");
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b.len().min(a.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = _mm512_setzero_si512();
    let chunks = n / 32;
    for i in 0..chunks {
        let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(bp.add(i * 32) as *const __m256i));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(widen32_u8(ap.add(i * 32)), vb));
    }
    let mut out = _mm512_reduce_add_epi32(acc);
    for i in chunks * 32..n {
        out += *ap.add(i) as i32 * *bp.add(i) as i32;
    }
    out
}

// Safe wrappers installed into the dispatch table. Soundness: the table
// selects these only after runtime detection of avx512f (see
// `dispatch::select`); the i8 wrappers additionally require avx512bw,
// which `dispatch` verifies before installing them (hosts without BW get
// the AVX2 bodies instead — the check happens once at table selection,
// not per call).

pub(crate) fn dot(a: &[f32], b: &[f32]) -> f64 {
    unsafe { dot_body(a, b) }
}

pub(crate) fn sq_norm2(a: &[f32]) -> f64 {
    unsafe { sq_norm2_body(a) }
}

pub(crate) fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    unsafe { sq_dist_body(a, b) }
}

pub(crate) fn norm1(a: &[f32]) -> f64 {
    unsafe { norm1_body(a) }
}

pub(crate) fn dot4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    unsafe { dot4_body(a0, a1, a2, a3, b) }
}

pub(crate) fn sq_dist4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    unsafe { sq_dist4_body(a0, a1, a2, a3, b) }
}

pub(crate) fn sq_dist4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[u8]) -> [u32; 4] {
    unsafe { sq_dist4_i8_body(a0, a1, a2, a3, b) }
}

pub(crate) fn dot4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[i8]) -> [i32; 4] {
    unsafe { dot4_i8_body(a0, a1, a2, a3, b) }
}

pub(crate) fn dot_i8(a: &[u8], b: &[i8]) -> i32 {
    unsafe { dot_i8_body(a, b) }
}
