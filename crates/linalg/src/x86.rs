//! Explicit AVX2+FMA kernels for x86-64.
//!
//! Every kernel keeps the crate's `f64`-accumulation contract: `f32` lanes
//! are widened to `f64` (`vcvtps2pd`, exact) before any arithmetic, and the
//! reductions run on 4-wide `f64` vectors with fused multiply-add. FMA skips
//! the intermediate rounding of the scalar `mul + add`, and the horizontal
//! reduction adds partial sums in a different order than the scalar kernels,
//! so results may differ from [`crate::scalar`] by O(ε) — bounded well
//! inside the 1e-4 relative tolerance documented in [`crate::dispatch`].
//!
//! Safety: each `#[target_feature]` function is only reachable through the
//! dispatch table, which installs these kernels strictly after
//! `is_x86_feature_detected!("avx2")` and `("fma")` both succeed.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Horizontal sum of a 4-wide `f64` vector.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum_pd(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let sum2 = _mm_add_pd(lo, hi);
    let swapped = _mm_unpackhi_pd(sum2, sum2);
    _mm_cvtsd_f64(_mm_add_sd(sum2, swapped))
}

/// Widens 8 packed `f32`s to two 4-wide `f64`s via two 128-bit loads
/// (cheaper than one 256-bit load plus a cross-lane extract: the second
/// load rides the load ports instead of the shuffle port).
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn widen8(p: *const f32) -> (__m256d, __m256d) {
    (
        _mm256_cvtps_pd(_mm_loadu_ps(p)),
        _mm256_cvtps_pd(_mm_loadu_ps(p.add(4))),
    )
}

// The reduction kernels run several independent 4-wide f64 accumulators
// (4 for sq_dist/sq_norm2, 8 for dot — 16/32 floats per iteration): FMA
// latency is ~4 cycles, so too few chains leaves the FMA ports idle and the
// kernel latency-bound instead of throughput-bound.

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_body(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    // Soundness: these bodies do raw pointer reads, so never trust one
    // slice's length for the other — clamp to the shorter operand (defined
    // truncation, like the scalar fallback) instead of reading out of
    // bounds if a caller slips past the debug assert in release builds.
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = [_mm256_setzero_pd(); 8];
    let blocks = n / 32;
    for i in 0..blocks {
        let base = i * 32;
        for (lane, slot) in acc.iter_mut().enumerate() {
            let off = base + lane * 4;
            *slot = _mm256_fmadd_pd(
                _mm256_cvtps_pd(_mm_loadu_ps(ap.add(off))),
                _mm256_cvtps_pd(_mm_loadu_ps(bp.add(off))),
                *slot,
            );
        }
    }
    let mut i = blocks * 32;
    while i + 8 <= n {
        let (a0, a1) = widen8(ap.add(i));
        let (b0, b1) = widen8(bp.add(i));
        acc[0] = _mm256_fmadd_pd(a0, b0, acc[0]);
        acc[1] = _mm256_fmadd_pd(a1, b1, acc[1]);
        i += 8;
    }
    let half = _mm256_add_pd(_mm256_add_pd(acc[0], acc[1]), _mm256_add_pd(acc[2], acc[3]));
    let half2 = _mm256_add_pd(_mm256_add_pd(acc[4], acc[5]), _mm256_add_pd(acc[6], acc[7]));
    let mut sum = hsum_pd(_mm256_add_pd(half, half2));
    for j in i..n {
        sum += *ap.add(j) as f64 * *bp.add(j) as f64;
    }
    sum
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sq_norm2_body(a: &[f32]) -> f64 {
    let n = a.len();
    let ap = a.as_ptr();
    let mut acc = [_mm256_setzero_pd(); 4];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let (a0, a1) = widen8(ap.add(base));
        let (a2, a3) = widen8(ap.add(base + 8));
        acc[0] = _mm256_fmadd_pd(a0, a0, acc[0]);
        acc[1] = _mm256_fmadd_pd(a1, a1, acc[1]);
        acc[2] = _mm256_fmadd_pd(a2, a2, acc[2]);
        acc[3] = _mm256_fmadd_pd(a3, a3, acc[3]);
    }
    let mut i = blocks * 16;
    while i + 8 <= n {
        let (a0, a1) = widen8(ap.add(i));
        acc[0] = _mm256_fmadd_pd(a0, a0, acc[0]);
        acc[1] = _mm256_fmadd_pd(a1, a1, acc[1]);
        i += 8;
    }
    let mut sum = hsum_pd(_mm256_add_pd(
        _mm256_add_pd(acc[0], acc[1]),
        _mm256_add_pd(acc[2], acc[3]),
    ));
    for j in i..n {
        let x = *ap.add(j) as f64;
        sum += x * x;
    }
    sum
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sq_dist_body(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist: dimension mismatch");
    // Soundness: these bodies do raw pointer reads, so never trust one
    // slice's length for the other — clamp to the shorter operand (defined
    // truncation, like the scalar fallback) instead of reading out of
    // bounds if a caller slips past the debug assert in release builds.
    let n = a.len().min(b.len());
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = [_mm256_setzero_pd(); 4];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let (a0, a1) = widen8(ap.add(base));
        let (b0, b1) = widen8(bp.add(base));
        let (a2, a3) = widen8(ap.add(base + 8));
        let (b2, b3) = widen8(bp.add(base + 8));
        let d0 = _mm256_sub_pd(a0, b0);
        let d1 = _mm256_sub_pd(a1, b1);
        let d2 = _mm256_sub_pd(a2, b2);
        let d3 = _mm256_sub_pd(a3, b3);
        acc[0] = _mm256_fmadd_pd(d0, d0, acc[0]);
        acc[1] = _mm256_fmadd_pd(d1, d1, acc[1]);
        acc[2] = _mm256_fmadd_pd(d2, d2, acc[2]);
        acc[3] = _mm256_fmadd_pd(d3, d3, acc[3]);
    }
    let mut i = blocks * 16;
    while i + 8 <= n {
        let (a0, a1) = widen8(ap.add(i));
        let (b0, b1) = widen8(bp.add(i));
        let d0 = _mm256_sub_pd(a0, b0);
        let d1 = _mm256_sub_pd(a1, b1);
        acc[0] = _mm256_fmadd_pd(d0, d0, acc[0]);
        acc[1] = _mm256_fmadd_pd(d1, d1, acc[1]);
        i += 8;
    }
    let mut sum = hsum_pd(_mm256_add_pd(
        _mm256_add_pd(acc[0], acc[1]),
        _mm256_add_pd(acc[2], acc[3]),
    ));
    for j in i..n {
        let d = *ap.add(j) as f64 - *bp.add(j) as f64;
        sum += d * d;
    }
    sum
}

#[target_feature(enable = "avx2,fma")]
unsafe fn norm1_body(a: &[f32]) -> f64 {
    let n = a.len();
    let ap = a.as_ptr();
    // |x| in the f64 domain: clear the sign bit after widening (identical to
    // the scalar `x.abs() as f64`, since widening is exact and sign-symmetric).
    let sign_mask = _mm256_set1_pd(-0.0);
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let chunks = n / 8;
    for i in 0..chunks {
        let (lo, hi) = widen8(ap.add(i * 8));
        acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, lo));
        acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign_mask, hi));
    }
    let mut sum = hsum_pd(_mm256_add_pd(acc0, acc1));
    for i in chunks * 8..n {
        sum += (*ap.add(i)).abs() as f64;
    }
    sum
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot4_body(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "dot4: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    // One widened load of `b` feeds four FMAs — the register-blocking that
    // makes multi-row matvec memory-bound on the rows instead of on `b`.
    let mut acc = [_mm256_setzero_pd(); 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let vb = _mm256_cvtps_pd(_mm_loadu_ps(bp.add(i * 4)));
        for (r, &rp) in rows.iter().enumerate() {
            let va = _mm256_cvtps_pd(_mm_loadu_ps(rp.add(i * 4)));
            acc[r] = _mm256_fmadd_pd(va, vb, acc[r]);
        }
    }
    let mut out = [
        hsum_pd(acc[0]),
        hsum_pd(acc[1]),
        hsum_pd(acc[2]),
        hsum_pd(acc[3]),
    ];
    for i in chunks * 4..n {
        let x = *bp.add(i) as f64;
        for (r, &rp) in rows.iter().enumerate() {
            out[r] += *rp.add(i) as f64 * x;
        }
    }
    out
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sq_dist4_body(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "sq_dist4: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    // One widened load of `b` feeds four sub+FMA chains — the same
    // register-blocking as dot4, paying the query conversion once per block.
    let mut acc = [_mm256_setzero_pd(); 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let vb = _mm256_cvtps_pd(_mm_loadu_ps(bp.add(i * 4)));
        for (r, &rp) in rows.iter().enumerate() {
            let d = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(rp.add(i * 4))), vb);
            acc[r] = _mm256_fmadd_pd(d, d, acc[r]);
        }
    }
    let mut out = [
        hsum_pd(acc[0]),
        hsum_pd(acc[1]),
        hsum_pd(acc[2]),
        hsum_pd(acc[3]),
    ];
    for i in chunks * 4..n {
        let x = *bp.add(i) as f64;
        for (r, &rp) in rows.iter().enumerate() {
            let d = *rp.add(i) as f64 - x;
            out[r] += d * d;
        }
    }
    out
}

// --- 8-bit quantized (SQ8) kernels ------------------------------------------
//
// Integer kernels for the quantized filter tier: u8 codes are widened to
// i16 (`vpmovzxbw`), differenced / paired with the query, and reduced with
// `vpmaddwd` (`_mm256_madd_epi16`), which multiplies i16 lanes and adds
// adjacent pairs into i32 — *without saturation*. The tempting one-step
// `vpmaddubsw` (`maddubs`, u8×i8) is NOT used: it saturates its i16 pair
// sums (two products of up to 255·127 overflow i16), which would break the
// exact-integer parity contract these kernels carry. Accumulation stays in
// i32 lanes — exact for lengths up to 2¹⁵ at worst-case magnitudes, far
// beyond the m ≤ 64 projected dimensionality served here.

/// Horizontal sum of the eight i32 lanes of a 256-bit vector.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256(v, 1);
    let sum4 = _mm_add_epi32(lo, hi);
    let sum2 = _mm_add_epi32(sum4, _mm_shuffle_epi32(sum4, 0b00_00_11_10));
    let sum1 = _mm_add_epi32(sum2, _mm_shuffle_epi32(sum2, 0b00_00_00_01));
    _mm_cvtsi128_si32(sum1)
}

/// Widens 16 packed u8 codes to 16 i16 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn widen16_u8(p: *const u8) -> __m256i {
    _mm256_cvtepu8_epi16(_mm_loadu_si128(p as *const __m128i))
}

#[target_feature(enable = "avx2")]
unsafe fn sq_dist4_i8_body(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[u8]) -> [u32; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "sq_dist4_i8: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    // One widened load of `b` feeds four sub+madd chains, 16 codes each —
    // the same register-blocking as the f32 sq_dist4, at a quarter of the
    // memory traffic.
    let mut acc = [_mm256_setzero_si256(); 4];
    let chunks = n / 16;
    for i in 0..chunks {
        let vb = widen16_u8(bp.add(i * 16));
        for (r, &rp) in rows.iter().enumerate() {
            let d = _mm256_sub_epi16(widen16_u8(rp.add(i * 16)), vb);
            acc[r] = _mm256_add_epi32(acc[r], _mm256_madd_epi16(d, d));
        }
    }
    let mut out = [
        hsum_epi32(acc[0]) as u32,
        hsum_epi32(acc[1]) as u32,
        hsum_epi32(acc[2]) as u32,
        hsum_epi32(acc[3]) as u32,
    ];
    for i in chunks * 16..n {
        let x = *bp.add(i) as i32;
        for (r, &rp) in rows.iter().enumerate() {
            let d = *rp.add(i) as i32 - x;
            out[r] += (d * d) as u32;
        }
    }
    out
}

#[target_feature(enable = "avx2")]
unsafe fn dot4_i8_body(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[i8]) -> [i32; 4] {
    debug_assert!(
        a0.len() == b.len() && a1.len() == b.len() && a2.len() == b.len() && a3.len() == b.len(),
        "dot4_i8: dimension mismatch"
    );
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b
        .len()
        .min(a0.len())
        .min(a1.len())
        .min(a2.len())
        .min(a3.len());
    let bp = b.as_ptr();
    let rows = [a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr()];
    let mut acc = [_mm256_setzero_si256(); 4];
    let chunks = n / 16;
    for i in 0..chunks {
        // Sign-extend the query codes; products (u8 as i16) × (i8 as i16)
        // fit i16 × i16 → i32 exactly under vpmaddwd.
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i * 16) as *const __m128i));
        for (r, &rp) in rows.iter().enumerate() {
            let va = widen16_u8(rp.add(i * 16));
            acc[r] = _mm256_add_epi32(acc[r], _mm256_madd_epi16(va, vb));
        }
    }
    let mut out = [
        hsum_epi32(acc[0]),
        hsum_epi32(acc[1]),
        hsum_epi32(acc[2]),
        hsum_epi32(acc[3]),
    ];
    for i in chunks * 16..n {
        let x = *bp.add(i) as i32;
        for (r, &rp) in rows.iter().enumerate() {
            out[r] += *rp.add(i) as i32 * x;
        }
    }
    out
}

#[target_feature(enable = "avx2")]
unsafe fn dot_i8_body(a: &[u8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8: dimension mismatch");
    // Soundness: clamp to the shortest operand (see dot_body).
    let n = b.len().min(a.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = _mm256_setzero_si256();
    let chunks = n / 16;
    for i in 0..chunks {
        // Sign-extend the query codes; products (u8 as i16) × (i8 as i16)
        // fit i16 × i16 → i32 exactly under vpmaddwd.
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i * 16) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(widen16_u8(ap.add(i * 16)), vb));
    }
    let mut out = hsum_epi32(acc);
    for i in chunks * 16..n {
        out += *ap.add(i) as i32 * *bp.add(i) as i32;
    }
    out
}

// Safe wrappers installed into the dispatch table. Soundness: the table
// selects these only after runtime detection of avx2+fma (see
// `dispatch::select`), so the target-feature preconditions always hold.

pub(crate) fn dot(a: &[f32], b: &[f32]) -> f64 {
    unsafe { dot_body(a, b) }
}

pub(crate) fn sq_norm2(a: &[f32]) -> f64 {
    unsafe { sq_norm2_body(a) }
}

pub(crate) fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    unsafe { sq_dist_body(a, b) }
}

pub(crate) fn norm1(a: &[f32]) -> f64 {
    unsafe { norm1_body(a) }
}

pub(crate) fn dot4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    unsafe { dot4_body(a0, a1, a2, a3, b) }
}

pub(crate) fn sq_dist4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    unsafe { sq_dist4_body(a0, a1, a2, a3, b) }
}

pub(crate) fn sq_dist4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[u8]) -> [u32; 4] {
    unsafe { sq_dist4_i8_body(a0, a1, a2, a3, b) }
}

pub(crate) fn dot4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[i8]) -> [i32; 4] {
    unsafe { dot4_i8_body(a0, a1, a2, a3, b) }
}

pub(crate) fn dot_i8(a: &[u8], b: &[i8]) -> i32 {
    unsafe { dot_i8_body(a, b) }
}
