//! Runtime kernel dispatch.
//!
//! The public kernels in [`crate::vector`] and the blocked routines in
//! [`crate::matrix`] all route through a single table of function pointers,
//! selected once per process and cached in a [`OnceLock`]. Callers pay one
//! atomic load per call (the `OnceLock` fast path) — no per-call feature
//! detection, no generic bloat, and the choice is overridable for tests and
//! benchmarks via [`force_scalar`].
//!
//! ## Backends
//!
//! | backend  | where                                          |
//! |----------|------------------------------------------------|
//! | `avx512` | x86-64 with runtime-detected AVX-512F          |
//! | `avx2`   | x86-64 with runtime-detected AVX2 + FMA        |
//! | `scalar` | everything else                                |
//!
//! ## Numerical contract
//!
//! Every backend widens `f32` inputs to `f64` exactly and accumulates in
//! `f64`; backends differ only in accumulation order and in the AVX2 path's
//! use of fused multiply-add (one rounding instead of two per term). The
//! cross-backend guarantee, asserted by this crate's property tests, is
//!
//! ```text
//! |simd − scalar| ≤ 1e-4 · max(1, |scalar|)
//! ```
//!
//! In practice agreement is ~1e-12 relative for the d ≤ 10⁴ vectors this
//! workspace handles; the loose documented bound leaves room for future
//! backends with wider accumulators (e.g. AVX-512) without an API break.

use std::sync::OnceLock;

use crate::scalar;

/// Signature of the blocked four-row kernels (`dot4`, `sq_dist4`): four rows
/// against one shared right-hand side.
pub type Dot4Fn = fn(&[f32], &[f32], &[f32], &[f32], &[f32]) -> [f64; 4];

/// Signature of the blocked quantized squared-distance kernel
/// (`sq_dist4_i8`): four u8 code rows against one shared u8 code query.
/// Exact integer arithmetic — every backend returns identical sums (valid
/// for lengths up to 2¹⁵; the quantized tier serves `m ≤ 64`).
pub type SqDist4I8Fn = fn(&[u8], &[u8], &[u8], &[u8], &[u8]) -> [u32; 4];

/// Signature of the blocked quantized inner-product kernel (`dot4_i8`):
/// four u8 code rows against one shared i8 query. Exact integer arithmetic,
/// same length bound as [`SqDist4I8Fn`].
pub type Dot4I8Fn = fn(&[u8], &[u8], &[u8], &[u8], &[i8]) -> [i32; 4];

/// Signature of the single-row quantized inner-product kernel (`dot_i8`):
/// one u8 code row against one i8 query — the tail shape of the quantized
/// verification screen. Exact integer arithmetic, same length bound as
/// [`SqDist4I8Fn`].
pub type DotI8Fn = fn(&[u8], &[i8]) -> i32;

/// The dispatch table: one entry per kernel.
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Backend name (`"avx512"`, `"avx2"` or `"scalar"`), for logs and
    /// bench reports.
    pub name: &'static str,
    /// Inner product `⟨a, b⟩`.
    pub dot: fn(&[f32], &[f32]) -> f64,
    /// Squared Euclidean distance `dis²(a, b)`.
    pub sq_dist: fn(&[f32], &[f32]) -> f64,
    /// Squared Euclidean norm `‖a‖²`.
    pub sq_norm2: fn(&[f32]) -> f64,
    /// 1-norm `‖a‖₁`.
    pub norm1: fn(&[f32]) -> f64,
    /// Four inner products against a shared right-hand side.
    pub dot4: Dot4Fn,
    /// Four squared Euclidean distances against a shared right-hand side.
    pub sq_dist4: Dot4Fn,
    /// Four quantized squared distances over u8 codes (SQ8 filter tier).
    pub sq_dist4_i8: SqDist4I8Fn,
    /// Four quantized inner products (u8 code rows × i8 query).
    pub dot4_i8: Dot4I8Fn,
    /// One quantized inner product (u8 code row × i8 query).
    pub dot_i8: DotI8Fn,
}

/// The portable table (also the fallback backend).
pub static SCALAR: Kernels = Kernels {
    name: "scalar",
    dot: scalar::dot,
    sq_dist: scalar::sq_dist,
    sq_norm2: scalar::sq_norm2,
    norm1: scalar::norm1,
    dot4: scalar::dot4,
    sq_dist4: scalar::sq_dist4,
    sq_dist4_i8: scalar::sq_dist4_i8,
    dot4_i8: scalar::dot4_i8,
    dot_i8: scalar::dot_i8,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    name: "avx2",
    dot: crate::x86::dot,
    sq_dist: crate::x86::sq_dist,
    sq_norm2: crate::x86::sq_norm2,
    norm1: crate::x86::norm1,
    dot4: crate::x86::dot4,
    sq_dist4: crate::x86::sq_dist4,
    sq_dist4_i8: crate::x86::sq_dist4_i8,
    dot4_i8: crate::x86::dot4_i8,
    dot_i8: crate::x86::dot_i8,
};

#[cfg(target_arch = "x86_64")]
static AVX512: Kernels = Kernels {
    name: "avx512",
    dot: crate::avx512::dot,
    sq_dist: crate::avx512::sq_dist,
    sq_norm2: crate::avx512::sq_norm2,
    norm1: crate::avx512::norm1,
    dot4: crate::avx512::dot4,
    sq_dist4: crate::avx512::sq_dist4,
    // Sound default for the i8 entries: the 512-bit integer bodies need
    // AVX-512BW, which the `avx512f` gate does not imply, so the static
    // table carries the AVX2 bodies and `avx512_table()` swaps in the
    // 512-bit versions after a one-time BW detection.
    sq_dist4_i8: crate::x86::sq_dist4_i8,
    dot4_i8: crate::x86::dot4_i8,
    dot_i8: crate::x86::dot_i8,
};

/// The avx512 table with the widest i8 kernels the host supports — BW is
/// detected once here, at table-construction time, never per call.
#[cfg(target_arch = "x86_64")]
fn avx512_table() -> Kernels {
    let mut k = AVX512;
    if std::arch::is_x86_feature_detected!("avx512bw") {
        k.sq_dist4_i8 = crate::avx512::sq_dist4_i8;
        k.dot4_i8 = crate::avx512::dot4_i8;
        k.dot_i8 = crate::avx512::dot_i8;
    }
    k
}

fn select() -> Kernels {
    if force_scalar_requested() {
        return SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return avx512_table();
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return AVX2;
        }
    }
    SCALAR
}

/// `PROMIPS_FORCE_SCALAR=1` pins the scalar backend for the whole process —
/// the knob the kernel benchmarks use to measure the fallback on SIMD hosts.
fn force_scalar_requested() -> bool {
    std::env::var_os("PROMIPS_FORCE_SCALAR").is_some_and(|v| v == "1" || v == "true")
}

static ACTIVE: OnceLock<Kernels> = OnceLock::new();

/// The process-wide kernel table (selected on first use).
#[inline]
pub fn kernels() -> &'static Kernels {
    ACTIVE.get_or_init(select)
}

/// Name of the active backend (`"avx512"`, `"avx2"` or `"scalar"`).
pub fn active_backend() -> &'static str {
    kernels().name
}

/// Every backend the current host can execute, scalar first. Parity tests
/// and benchmarks iterate this so each SIMD tier is exercised — not just
/// the one the dispatcher would pick. (Tables are returned by value —
/// `Kernels` is `Copy` — because the avx512 entry's i8 kernels depend on
/// the host's AVX-512BW support.)
pub fn available_backends() -> Vec<Kernels> {
    #[allow(unused_mut)]
    let mut v: Vec<Kernels> = vec![SCALAR];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            v.push(AVX2);
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            v.push(avx512_table());
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_stable_and_named() {
        let k1 = kernels();
        let k2 = kernels();
        assert_eq!(k1.name, k2.name, "dispatch must be cached");
        assert!(["avx512", "avx2", "scalar"].contains(&k1.name));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn widest_available_backend_selected() {
        if std::env::var_os("PROMIPS_FORCE_SCALAR").is_some() {
            return;
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            assert_eq!(active_backend(), "avx512");
        } else if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            assert_eq!(active_backend(), "avx2");
        }
    }
}
