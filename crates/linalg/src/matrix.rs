//! Row-major dense matrix, used for datasets (n × d), projection matrices
//! (m × d), and PQ codebooks.

use crate::vector::{dot, dot4};

/// A row-major dense `f32` matrix.
///
/// Rows are the natural unit here: a dataset is a matrix whose rows are
/// points; a projection is a matrix whose rows are the `m` 2-stable random
/// vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing buffer. `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer size {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix row by row from an iterator of row slices.
    pub fn from_rows(cols: usize, rows_iter: impl IntoIterator<Item = Vec<f32>>) -> Self {
        let mut data = Vec::new();
        let mut rows = 0;
        for row in rows_iter {
            assert_eq!(row.len(), cols, "row {rows} has wrong width");
            data.extend_from_slice(&row);
            rows += 1;
        }
        Self { rows, cols, data }
    }

    /// Number of rows (points).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (dimensionality).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns true if the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows. A zero-column matrix yields no rows (its backing
    /// buffer is empty, so there is nothing to chunk).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The raw backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix–vector product `self · x`, returning an `f32` vector with
    /// `f64` accumulation per row. This is exactly the m-fold 2-stable
    /// random projection of Definition 2 when `self` is the m × d matrix of
    /// i.i.d. N(0,1) rows.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Calls `f(row, ⟨row, q⟩)` for each row in `lo..hi`, scoring four
    /// contiguous rows per blocked [`dot4`] call (scalar-kernel tail) — the
    /// shared inner loop of the exact ground-truth scanners.
    pub fn dot_rows(&self, lo: usize, hi: usize, q: &[f32], mut f: impl FnMut(usize, f64)) {
        debug_assert!(lo <= hi && hi <= self.rows);
        let mut i = lo;
        while i + 4 <= hi {
            let ips = dot4(
                self.row(i),
                self.row(i + 1),
                self.row(i + 2),
                self.row(i + 3),
                q,
            );
            for (j, &ip) in ips.iter().enumerate() {
                f(i + j, ip);
            }
            i += 4;
        }
        for r in i..hi {
            f(r, dot(self.row(r), q));
        }
    }

    /// Allocation-free matrix–vector product: writes `self · x` into `out`
    /// (`out.len()` must equal the row count). Rows are processed four at a
    /// time through the register-blocked [`dot4`] kernel, so `x` is loaded
    /// once per block instead of once per row.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output length mismatch");
        let c = self.cols;
        let blocks = self.rows / 4;
        for bi in 0..blocks {
            let base = bi * 4;
            let p = &self.data[base * c..];
            let r = dot4(&p[..c], &p[c..2 * c], &p[2 * c..3 * c], &p[3 * c..4 * c], x);
            out[base] = r[0] as f32;
            out[base + 1] = r[1] as f32;
            out[base + 2] = r[2] as f32;
            out[base + 3] = r[3] as f32;
        }
        for (i, slot) in out.iter_mut().enumerate().skip(blocks * 4) {
            *slot = dot(self.row(i), x) as f32;
        }
    }

    /// `self · otherᵀ` — both operands row-major, result `n × m` where
    /// `self` is `n × d` and `other` is `m × d`. Entry `(i, j)` is
    /// `⟨self.row(i), other.row(j)⟩` with `f64` accumulation.
    ///
    /// This is the batched form of [`Matrix::matvec`]: projecting a whole
    /// dataset is `data.gemm_nt(projection)` — one output buffer, the
    /// projection rows streamed through the blocked kernel per data row —
    /// instead of n independent allocating matvecs.
    pub fn gemm_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "gemm_nt: inner dimension mismatch");
        let (n, m) = (self.rows, other.rows);
        let mut out = vec![0.0f32; n * m];
        for (i, chunk) in out.chunks_exact_mut(m.max(1)).enumerate().take(n) {
            other.matvec_into(self.row(i), &mut chunk[..m]);
        }
        Matrix::from_vec(n, m, out)
    }

    /// Appends a row. Must match the column count.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Gathers the given row indices into a new matrix (used to materialize
    /// query sets and cluster splits).
    pub fn gather(&self, indices: &[usize]) -> Matrix {
        let mut out = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            out.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_size() {
        Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0]);
        let y = m.matvec(&[3.0, 4.0, 5.0]);
        assert_eq!(y, vec![-2.0, 10.0]);
    }

    #[test]
    fn matvec_into_matches_per_row_dot() {
        // 11 rows exercises both the 4-row blocks and the remainder rows.
        let rows = 11;
        let cols = 9;
        let m = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| ((i * 37 % 19) as f32) - 9.0)
                .collect(),
        );
        let x: Vec<f32> = (0..cols).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let mut out = vec![0.0f32; rows];
        m.matvec_into(&x, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = dot(m.row(i), &x) as f32;
            assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0), "row {i}");
        }
    }

    #[test]
    fn gemm_nt_matches_dots() {
        let a = Matrix::from_vec(5, 7, (0..35).map(|i| (i as f32 * 0.3).sin()).collect());
        let b = Matrix::from_vec(6, 7, (0..42).map(|i| (i as f32 * 0.7).cos()).collect());
        let c = a.gemm_nt(&b);
        assert_eq!((c.rows(), c.cols()), (5, 6));
        for i in 0..5 {
            for j in 0..6 {
                let want = dot(a.row(i), b.row(j)) as f32;
                let got = c.row(i)[j];
                assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn gemm_nt_degenerate_shapes() {
        let a = Matrix::zeros(3, 4);
        let empty = Matrix::zeros(0, 4);
        let c = a.gemm_nt(&empty);
        assert_eq!((c.rows(), c.cols()), (3, 0));
        let c2 = empty.gemm_nt(&a);
        assert_eq!((c2.rows(), c2.cols()), (0, 3));
    }

    #[test]
    fn push_row_and_gather() {
        let mut m = Matrix::zeros(0, 2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        m.push_row(&[5.0, 6.0]);
        let g = m.gather(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn from_rows_builder() {
        let m = Matrix::from_rows(2, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }
}
