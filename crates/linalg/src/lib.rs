//! Dense linear-algebra kernels used across the ProMIPS reproduction.
//!
//! Data vectors are stored as `f32` (halving the memory footprint and disk
//! pages relative to `f64`, which matters for the paper's Page Access
//! metric), while every reduction — inner products, norms, distances — is
//! accumulated in `f64` so the searching conditions of the paper keep full
//! precision.

pub mod matrix;
pub mod vector;

pub use matrix::Matrix;
pub use vector::{
    add_scaled, dist, dot, norm1, norm2, sq_dist, sq_norm2, sub,
};
