//! Dense linear-algebra kernels used across the ProMIPS reproduction.
//!
//! Data vectors are stored as `f32` (halving the memory footprint and disk
//! pages relative to `f64`, which matters for the paper's Page Access
//! metric), while every reduction — inner products, norms, distances — is
//! accumulated in `f64` so the searching conditions of the paper keep full
//! precision.
//!
//! Kernels are **runtime-dispatched**: x86-64 hosts get the widest explicit
//! SIMD tier they support (AVX-512F in [`avx512`], else AVX2+FMA in
//! [`x86`]); everywhere else the portable [`scalar`] versions run. The
//! choice is made once per process and cached ([`dispatch`]);
//! `PROMIPS_FORCE_SCALAR=1` pins the fallback. See [`dispatch`] for the
//! cross-backend numerical tolerance contract.

pub mod dispatch;
pub mod matrix;
pub mod scalar;
pub mod vector;

#[cfg(target_arch = "x86_64")]
mod avx512;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use dispatch::{active_backend, kernels, Kernels};
pub use matrix::Matrix;
pub use vector::{
    add_scaled, dist, dot, dot4, dot4_i8, dot_i8, norm1, norm2, sq_dist, sq_dist4, sq_dist4_i8,
    sq_norm2, sub,
};
