//! Vector kernels: inner product, norms, Euclidean distances.
//!
//! All kernels take `&[f32]` slices and accumulate in `f64` with 4-way
//! unrolling, which the compiler auto-vectorizes on x86-64 and aarch64.

/// Inner product `⟨a, b⟩` with `f64` accumulation.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ca[0] as f64 * cb[0] as f64;
        acc[1] += ca[1] as f64 * cb[1] as f64;
        acc[2] += ca[2] as f64 * cb[2] as f64;
        acc[3] += ca[3] as f64 * cb[3] as f64;
    }
    let mut tail = 0.0;
    for (&x, &y) in a_rest.iter().zip(b_rest) {
        tail += x as f64 * y as f64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared Euclidean norm `‖a‖²`.
#[inline]
pub fn sq_norm2(a: &[f32]) -> f64 {
    dot(a, a)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm2(a: &[f32]) -> f64 {
    sq_norm2(a).sqrt()
}

/// 1-norm `‖a‖₁ = Σ|aᵢ|` — the quantity Quick-Probe stores per point
/// (Theorem 4 of the paper bounds `dis(o,q) ≤ ‖o‖₁ + ‖q‖₁`).
#[inline]
pub fn norm1(a: &[f32]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    let (a4, rest) = a.split_at(chunks * 4);
    for c in a4.chunks_exact(4) {
        acc[0] += c[0].abs() as f64;
        acc[1] += c[1].abs() as f64;
        acc[2] += c[2].abs() as f64;
        acc[3] += c[3].abs() as f64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + rest.iter().map(|x| x.abs() as f64).sum::<f64>()
}

/// Squared Euclidean distance `dis²(a, b)`.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist: dimension mismatch");
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let d0 = ca[0] as f64 - cb[0] as f64;
        let d1 = ca[1] as f64 - cb[1] as f64;
        let d2 = ca[2] as f64 - cb[2] as f64;
        let d3 = ca[3] as f64 - cb[3] as f64;
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0;
    for (&x, &y) in a_rest.iter().zip(b_rest) {
        let d = x as f64 - y as f64;
        tail += d * d;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Euclidean distance `dis(a, b)`.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Element-wise difference `a − b` into a fresh vector.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// `out += alpha * x` (the BLAS `axpy`), used by k-means centroid updates.
pub fn add_scaled(out: &mut [f64], alpha: f64, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // length 5 exercises the tail path
        assert_eq!(dot(&[1.0; 5], &[2.0; 5]), 10.0);
    }

    #[test]
    fn norms_basic() {
        assert_eq!(sq_norm2(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[1.0, -2.0, 3.0, -4.0, 5.0]), 15.0);
    }

    #[test]
    fn distances_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist(&[1.0; 7], &[1.0; 7]), 0.0);
    }

    #[test]
    fn sub_and_axpy() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
        let mut acc = vec![1.0f64, 1.0];
        add_scaled(&mut acc, 2.0, &[3.0, -1.0]);
        assert_eq!(acc, vec![7.0, -1.0]);
    }

    proptest! {
        #[test]
        fn dot_matches_naive(v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 0..64)) {
            let a: Vec<f32> = v.iter().map(|p| p.0).collect();
            let b: Vec<f32> = v.iter().map(|p| p.1).collect();
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            prop_assert!((dot(&a, &b) - naive).abs() <= 1e-9 * (1.0 + naive.abs()));
        }

        #[test]
        fn sq_dist_identity_with_ip(v in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..48)) {
            // dis²(a,b) = ‖a‖² + ‖b‖² − 2⟨a,b⟩ — the identity ProMIPS's
            // searching conditions rest on.
            let a: Vec<f32> = v.iter().map(|p| p.0).collect();
            let b: Vec<f32> = v.iter().map(|p| p.1).collect();
            let lhs = sq_dist(&a, &b);
            let rhs = sq_norm2(&a) + sq_norm2(&b) - 2.0 * dot(&a, &b);
            prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs()));
        }

        #[test]
        fn norm1_dominates_norm2(a in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            // ‖a‖₂ ≤ ‖a‖₁ — the inequality behind Theorem 4.
            prop_assert!(norm2(&a) <= norm1(&a) + 1e-9);
        }

        #[test]
        fn triangle_inequality(ab in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 1..32)) {
            let a: Vec<f32> = ab.iter().map(|p| p.0).collect();
            let b: Vec<f32> = ab.iter().map(|p| p.1).collect();
            let c: Vec<f32> = ab.iter().map(|p| p.2).collect();
            prop_assert!(dist(&a, &c) <= dist(&a, &b) + dist(&b, &c) + 1e-9);
        }
    }
}
