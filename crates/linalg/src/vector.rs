//! Vector kernels: inner product, norms, Euclidean distances.
//!
//! All kernels take `&[f32]` slices and accumulate in `f64`. Each call
//! routes through the runtime-dispatched table in [`crate::dispatch`] —
//! AVX2+FMA on x86-64 hosts that support it, the portable
//! [`crate::scalar`] implementations elsewhere.

use crate::dispatch::kernels;

/// Inner product `⟨a, b⟩` with `f64` accumulation.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    (kernels().dot)(a, b)
}

/// Squared Euclidean norm `‖a‖²`.
#[inline]
pub fn sq_norm2(a: &[f32]) -> f64 {
    (kernels().sq_norm2)(a)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm2(a: &[f32]) -> f64 {
    sq_norm2(a).sqrt()
}

/// 1-norm `‖a‖₁ = Σ|aᵢ|` — the quantity Quick-Probe stores per point
/// (Theorem 4 of the paper bounds `dis(o,q) ≤ ‖o‖₁ + ‖q‖₁`).
#[inline]
pub fn norm1(a: &[f32]) -> f64 {
    (kernels().norm1)(a)
}

/// Squared Euclidean distance `dis²(a, b)`.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    (kernels().sq_dist)(a, b)
}

/// Euclidean distance `dis(a, b)`.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Four inner products `⟨aᵢ, b⟩` sharing one pass over `b` — the blocked
/// primitive behind [`crate::Matrix::matvec_into`] and
/// [`crate::Matrix::gemm_nt`].
#[inline]
pub fn dot4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    (kernels().dot4)(a0, a1, a2, a3, b)
}

/// Four squared distances `dis²(aᵢ, b)` sharing one pass over `b` — the
/// blocked primitive behind the projected-arena annulus scan (four
/// contiguous decoded rows filtered against one projected query per call).
#[inline]
pub fn sq_dist4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f64; 4] {
    (kernels().sq_dist4)(a0, a1, a2, a3, b)
}

/// Four quantized squared distances `Σⱼ (aᵢⱼ − bⱼ)²` over u8 codes sharing
/// one pass over `b` — the blocked primitive behind the SQ8 annulus filter
/// (four contiguous code rows against one quantized query per call).
///
/// Exact integer arithmetic: every backend returns identical sums. Valid
/// for lengths up to 2¹⁵ (i32 lane accumulation bound).
#[inline]
pub fn sq_dist4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[u8]) -> [u32; 4] {
    (kernels().sq_dist4_i8)(a0, a1, a2, a3, b)
}

/// Four quantized inner products `Σⱼ aᵢⱼ·bⱼ` (u8 code rows × i8 query)
/// sharing one pass over `b`. Exact integer arithmetic, same length bound
/// as [`sq_dist4_i8`].
#[inline]
pub fn dot4_i8(a0: &[u8], a1: &[u8], a2: &[u8], a3: &[u8], b: &[i8]) -> [i32; 4] {
    (kernels().dot4_i8)(a0, a1, a2, a3, b)
}

/// One quantized inner product `Σⱼ aⱼ·bⱼ` (u8 code row × i8 query) — the
/// tail shape of the quantized verification screen, pairing with
/// [`dot4_i8`] the way [`dot`] pairs with [`dot4`]. Exact integer
/// arithmetic, same length bound as [`sq_dist4_i8`].
#[inline]
pub fn dot_i8(a: &[u8], b: &[i8]) -> i32 {
    (kernels().dot_i8)(a, b)
}

/// Element-wise difference `a − b` into a fresh vector.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// `out += alpha * x` (the BLAS `axpy`), used by k-means centroid updates.
pub fn add_scaled(out: &mut [f64], alpha: f64, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // length 5 exercises the tail path
        assert_eq!(dot(&[1.0; 5], &[2.0; 5]), 10.0);
    }

    #[test]
    fn norms_basic() {
        assert_eq!(sq_norm2(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[1.0, -2.0, 3.0, -4.0, 5.0]), 15.0);
    }

    #[test]
    fn distances_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist(&[1.0; 7], &[1.0; 7]), 0.0);
    }

    #[test]
    fn dot4_matches_four_dots() {
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..13).map(|i| (r * 13 + i) as f32 * 0.25 - 3.0).collect())
            .collect();
        let b: Vec<f32> = (0..13).map(|i| (i as f32).cos()).collect();
        let got = dot4(&rows[0], &rows[1], &rows[2], &rows[3], &b);
        for r in 0..4 {
            let want = dot(&rows[r], &b);
            assert!(
                (got[r] - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "row {r}"
            );
        }
    }

    #[test]
    fn sq_dist4_matches_four_sq_dists() {
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..13).map(|i| (r * 13 + i) as f32 * 0.25 - 3.0).collect())
            .collect();
        let b: Vec<f32> = (0..13).map(|i| (i as f32).cos()).collect();
        let got = sq_dist4(&rows[0], &rows[1], &rows[2], &rows[3], &b);
        for r in 0..4 {
            let want = sq_dist(&rows[r], &b);
            assert!(
                (got[r] - want).abs() <= 1e-9 * (1.0 + want.abs()),
                "row {r}"
            );
        }
    }

    #[test]
    fn quantized_kernels_basic() {
        // Length 5 exercises the SIMD tail path on every backend.
        let a: Vec<u8> = vec![0, 255, 10, 20, 30];
        let b: Vec<u8> = vec![255, 0, 10, 25, 28];
        let want: u32 = 255 * 255 + 255 * 255 + 25 + 4;
        assert_eq!(sq_dist4_i8(&a, &a, &a, &a, &b), [want; 4]);
        assert_eq!(sq_dist4_i8(&a, &b, &a, &b, &a), [0, want, 0, want]);

        let q: Vec<i8> = vec![-128, 127, 1, -1, 0];
        // a·q = 0·(−128) + 255·127 + 10·1 + 20·(−1) + 30·0
        let want_dot: i32 = 127 * 255 + 10 - 20;
        assert_eq!(dot4_i8(&a, &a, &a, &a, &q), [want_dot; 4]);
        assert_eq!(dot_i8(&a, &q), want_dot);
        assert_eq!(sq_dist4_i8(&[], &[], &[], &[], &[]), [0; 4]);
        assert_eq!(dot4_i8(&[], &[], &[], &[], &[]), [0; 4]);
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    fn sub_and_axpy() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
        let mut acc = vec![1.0f64, 1.0];
        add_scaled(&mut acc, 2.0, &[3.0, -1.0]);
        assert_eq!(acc, vec![7.0, -1.0]);
    }

    proptest! {
        #[test]
        fn dot_matches_naive(v in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 0..64)) {
            let a: Vec<f32> = v.iter().map(|p| p.0).collect();
            let b: Vec<f32> = v.iter().map(|p| p.1).collect();
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            prop_assert!((dot(&a, &b) - naive).abs() <= 1e-9 * (1.0 + naive.abs()));
        }

        #[test]
        fn sq_dist_identity_with_ip(v in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 1..48)) {
            // dis²(a,b) = ‖a‖² + ‖b‖² − 2⟨a,b⟩ — the identity ProMIPS's
            // searching conditions rest on.
            let a: Vec<f32> = v.iter().map(|p| p.0).collect();
            let b: Vec<f32> = v.iter().map(|p| p.1).collect();
            let lhs = sq_dist(&a, &b);
            let rhs = sq_norm2(&a) + sq_norm2(&b) - 2.0 * dot(&a, &b);
            prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs()));
        }

        #[test]
        fn norm1_dominates_norm2(a in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            // ‖a‖₂ ≤ ‖a‖₁ — the inequality behind Theorem 4.
            prop_assert!(norm2(&a) <= norm1(&a) + 1e-9);
        }

        #[test]
        fn triangle_inequality(ab in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 1..32)) {
            let a: Vec<f32> = ab.iter().map(|p| p.0).collect();
            let b: Vec<f32> = ab.iter().map(|p| p.1).collect();
            let c: Vec<f32> = ab.iter().map(|p| p.2).collect();
            prop_assert!(dist(&a, &c) <= dist(&a, &b) + dist(&b, &c) + 1e-9);
        }
    }

    /// SIMD/scalar parity: every backend the host can execute (not just the
    /// dispatched one) must agree with the portable reference within 1e-4
    /// relative tolerance (the contract in [`crate::dispatch`]). Lengths
    /// 0..200 sweep every unroll remainder across the 4/8/16/32-wide inner
    /// loops; magnitudes up to 1e3 stress cancellation in `sq_dist`.
    mod backend_parity {
        use super::*;
        use crate::dispatch::available_backends;
        use crate::scalar;

        fn close(got: f64, reference: f64) -> bool {
            (got - reference).abs() <= 1e-4 * reference.abs().max(1.0)
        }

        proptest! {
            #[test]
            fn dot_parity(v in proptest::collection::vec((-1e3f32..1e3, -1e3f32..1e3), 0..200)) {
                let a: Vec<f32> = v.iter().map(|p| p.0).collect();
                let b: Vec<f32> = v.iter().map(|p| p.1).collect();
                let want = scalar::dot(&a, &b);
                for k in available_backends() {
                    prop_assert!(close((k.dot)(&a, &b), want), "backend {}", k.name);
                }
            }

            #[test]
            fn sq_dist_parity(v in proptest::collection::vec((-1e3f32..1e3, -1e3f32..1e3), 0..200)) {
                let a: Vec<f32> = v.iter().map(|p| p.0).collect();
                let b: Vec<f32> = v.iter().map(|p| p.1).collect();
                let want = scalar::sq_dist(&a, &b);
                for k in available_backends() {
                    prop_assert!(close((k.sq_dist)(&a, &b), want), "backend {}", k.name);
                }
            }

            #[test]
            fn sq_norm2_parity(a in proptest::collection::vec(-1e3f32..1e3, 0..200)) {
                let want = scalar::sq_norm2(&a);
                for k in available_backends() {
                    prop_assert!(close((k.sq_norm2)(&a), want), "backend {}", k.name);
                }
            }

            #[test]
            fn norm1_parity(a in proptest::collection::vec(-1e3f32..1e3, 0..200)) {
                let want = scalar::norm1(&a);
                for k in available_backends() {
                    prop_assert!(close((k.norm1)(&a), want), "backend {}", k.name);
                }
            }

            #[test]
            fn dot4_parity(v in proptest::collection::vec(
                (-1e2f32..1e2, -1e2f32..1e2, -1e2f32..1e2, -1e2f32..1e2, -1e2f32..1e2),
                0..150,
            )) {
                let cols: Vec<Vec<f32>> = (0..5)
                    .map(|c| v.iter().map(|t| [t.0, t.1, t.2, t.3, t.4][c]).collect())
                    .collect();
                let want = scalar::dot4(&cols[0], &cols[1], &cols[2], &cols[3], &cols[4]);
                for k in available_backends() {
                    let got = (k.dot4)(&cols[0], &cols[1], &cols[2], &cols[3], &cols[4]);
                    for r in 0..4 {
                        prop_assert!(close(got[r], want[r]), "backend {} row {}", k.name, r);
                    }
                }
            }

            /// Quantized kernels are exact integer reductions: every
            /// backend must agree with the scalar reference *bit for bit*
            /// (no tolerance), across lengths sweeping the 16/32-code
            /// unroll remainders and the full u8/i8 code ranges.
            #[test]
            fn sq_dist4_i8_parity(v in proptest::collection::vec(
                (0u16..256, 0u16..256, 0u16..256, 0u16..256, 0u16..256),
                0..200,
            )) {
                let cols: Vec<Vec<u8>> = (0..5)
                    .map(|c| v.iter().map(|t| [t.0, t.1, t.2, t.3, t.4][c] as u8).collect())
                    .collect();
                let want = scalar::sq_dist4_i8(&cols[0], &cols[1], &cols[2], &cols[3], &cols[4]);
                for k in available_backends() {
                    let got = (k.sq_dist4_i8)(&cols[0], &cols[1], &cols[2], &cols[3], &cols[4]);
                    prop_assert_eq!(got, want, "backend {}", k.name);
                }
            }

            #[test]
            fn dot4_i8_parity(v in proptest::collection::vec(
                (0u16..256, 0u16..256, 0u16..256, 0u16..256, -128i16..128),
                0..200,
            )) {
                let rows: Vec<Vec<u8>> = (0..4)
                    .map(|c| v.iter().map(|t| [t.0, t.1, t.2, t.3][c] as u8).collect())
                    .collect();
                let q: Vec<i8> = v.iter().map(|t| t.4 as i8).collect();
                let want = scalar::dot4_i8(&rows[0], &rows[1], &rows[2], &rows[3], &q);
                for k in available_backends() {
                    let got = (k.dot4_i8)(&rows[0], &rows[1], &rows[2], &rows[3], &q);
                    prop_assert_eq!(got, want, "backend {}", k.name);
                }
            }

            #[test]
            fn dot_i8_parity(v in proptest::collection::vec(
                (0u16..256, -128i16..128),
                0..200,
            )) {
                let a: Vec<u8> = v.iter().map(|t| t.0 as u8).collect();
                let q: Vec<i8> = v.iter().map(|t| t.1 as i8).collect();
                let want = scalar::dot_i8(&a, &q);
                for k in available_backends() {
                    prop_assert_eq!((k.dot_i8)(&a, &q), want, "backend {}", k.name);
                }
            }

            #[test]
            fn sq_dist4_parity(v in proptest::collection::vec(
                (-1e2f32..1e2, -1e2f32..1e2, -1e2f32..1e2, -1e2f32..1e2, -1e2f32..1e2),
                0..150,
            )) {
                let cols: Vec<Vec<f32>> = (0..5)
                    .map(|c| v.iter().map(|t| [t.0, t.1, t.2, t.3, t.4][c]).collect())
                    .collect();
                let want = scalar::sq_dist4(&cols[0], &cols[1], &cols[2], &cols[3], &cols[4]);
                for k in available_backends() {
                    let got = (k.sq_dist4)(&cols[0], &cols[1], &cols[2], &cols[3], &cols[4]);
                    for r in 0..4 {
                        prop_assert!(close(got[r], want[r]), "backend {} row {}", k.name, r);
                    }
                }
            }
        }
    }
}
