//! Side-by-side comparison of ProMIPS against the paper's three baselines
//! (H2-ALSH, Norm-Ranging LSH, PQ-based) on one synthetic dataset —
//! a miniature of the paper's Figs. 5–8.
//!
//! Run with: `cargo run --release --example compare_methods`

use std::sync::Arc;
use std::time::Instant;

use promips::baselines::h2alsh::{H2Alsh, H2AlshConfig};
use promips::baselines::pq::{PqConfig, PqMips};
use promips::baselines::rangelsh::{RangeLsh, RangeLshConfig};
use promips::baselines::{MipsMethod, ProMipsMethod};
use promips::core::{ProMips, ProMipsConfig};
use promips::data::{exact_topk_batch, DatasetSpec};
use promips::storage::Pager;

const K: usize = 10;
const QUERIES: usize = 30;

fn main() {
    let spec = DatasetSpec::netflix().with_n(10_000);
    println!("dataset: {} n={} d={}", spec.name, spec.n, spec.d);
    let ds = spec.generate();
    let gt = exact_topk_batch(&ds.data, &ds.queries, K, 4);

    // Build all four methods.
    let mut methods: Vec<(Box<dyn MipsMethod>, f64)> = Vec::new();
    let t = Instant::now();
    let promips = ProMips::build_in_memory(
        &ds.data,
        ProMipsConfig::builder().c(0.9).p(0.5).seed(1).build(),
    )
    .unwrap();
    methods.push((Box::new(ProMipsMethod::new(promips)), ms(t)));

    let t = Instant::now();
    let h2 = H2Alsh::build(
        &ds.data,
        H2AlshConfig::default(),
        Arc::new(Pager::in_memory(4096, 4096)),
    )
    .unwrap();
    methods.push((Box::new(h2), ms(t)));

    let t = Instant::now();
    let rl = RangeLsh::build(
        &ds.data,
        RangeLshConfig::default(),
        Arc::new(Pager::in_memory(4096, 4096)),
    )
    .unwrap();
    methods.push((Box::new(rl), ms(t)));

    let t = Instant::now();
    let pq = PqMips::build(
        &ds.data,
        PqConfig::default(),
        Arc::new(Pager::in_memory(4096, 4096)),
    )
    .unwrap();
    methods.push((Box::new(pq), ms(t)));

    println!(
        "\n{:<10} {:>9} {:>9} {:>8} {:>8} {:>10} {:>9}",
        "method", "build ms", "index MB", "ratio", "recall", "pages/q", "cpu ms/q"
    );
    for (method, build_ms) in &methods {
        let mut sum_ratio = 0.0;
        let mut sum_recall = 0.0;
        let mut sum_pages = 0.0;
        let mut sum_ms = 0.0;
        for (qi, exact) in gt.iter().enumerate().take(QUERIES) {
            let q = ds.queries.row(qi);
            method.reset_stats();
            let t = Instant::now();
            let res = method.search(q, K).unwrap();
            sum_ms += ms(t);
            sum_pages += method.page_accesses() as f64;

            sum_ratio += res
                .iter()
                .zip(exact)
                .filter(|(_, e)| e.1 > 0.0)
                .map(|(r, e)| (r.ip / e.1).min(1.0))
                .sum::<f64>()
                / K as f64;
            let ids: std::collections::HashSet<u64> = exact.iter().map(|&(id, _)| id).collect();
            sum_recall += res.iter().filter(|n| ids.contains(&n.id)).count() as f64 / K as f64;
        }
        let nq = QUERIES as f64;
        println!(
            "{:<10} {:>9.0} {:>9.2} {:>8.4} {:>8.3} {:>10.1} {:>9.3}",
            method.name(),
            build_ms,
            method.index_size_bytes() as f64 / 1048576.0,
            sum_ratio / nq,
            sum_recall / nq,
            sum_pages / nq,
            sum_ms / nq
        );
    }
    println!(
        "\n(the paper's qualitative ordering: ProMIPS smallest index, fewest \
         pages, and top accuracy; PQ fastest CPU; see EXPERIMENTS.md)"
    );
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}
