//! Disk persistence: build the iDistance layer into a real page file,
//! reopen it in a fresh process-like context, and compare cold vs warm
//! page accesses — the disk-resident behaviour the paper evaluates.
//!
//! Run with: `cargo run --release --example persistence`

use std::sync::Arc;

use promips::idistance::{build_index, IDistanceConfig, IDistanceIndex};
use promips::linalg::Matrix;
use promips::stats::Xoshiro256pp;
use promips::storage::{AccessStats, FileStorage, Pager, PAGE_SIZE_DEFAULT};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("promips-persistence-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("index.pmx");

    // Some projected + original data (in the full pipeline promips-core
    // does the projection; here we drive the index layer directly).
    let (n, m, d) = (20_000usize, 8usize, 96usize);
    let mut rng = Xoshiro256pp::seed_from_u64(11);
    let proj = Matrix::from_rows(
        m,
        (0..n).map(|_| (0..m).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );
    let orig = Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );

    // Build into a file-backed pager.
    println!("building iDistance index into {} …", path.display());
    let storage = Arc::new(FileStorage::create(&path, PAGE_SIZE_DEFAULT)?);
    let pager = Arc::new(Pager::new(storage, 2048, AccessStats::new_shared()));
    let cfg = IDistanceConfig {
        kp: 5,
        nkey: 16,
        ksp: 6,
        ..Default::default()
    };
    let index = build_index(pager, &proj, &orig, &cfg)?;
    println!(
        "  {} points, {} sub-partitions, file = {:.2} MB",
        index.len(),
        index.subparts().len(),
        index.size_bytes() as f64 / 1048576.0
    );
    drop(index);

    // Reopen from the footer, as a restarted process would.
    println!("\nreopening from disk …");
    let storage = Arc::new(FileStorage::open(&path, PAGE_SIZE_DEFAULT)?);
    let pager = Arc::new(Pager::new(storage, 2048, AccessStats::new_shared()));
    let index = IDistanceIndex::open(pager)?;
    println!(
        "  reopened: {} points, m = {}",
        index.len(),
        index.proj_dim()
    );

    // Cold query vs warm query.
    let pq: Vec<f32> = (0..m).map(|_| rng.normal() as f32).collect();
    index.pager().clear_cache();
    index.pager().stats().reset();
    let cold = index.range_candidates(&pq, -1.0, 2.0)?;
    let cold_stats = index.access_stats();

    index.pager().stats().reset();
    let warm = index.range_candidates(&pq, -1.0, 2.0)?;
    let warm_stats = index.access_stats();
    assert_eq!(cold.len(), warm.len());

    println!(
        "\nrange query ({} candidates):\n  cold: {} logical reads, {} buffer misses\n  \
         warm: {} logical reads, {} buffer misses",
        cold.len(),
        cold_stats.logical_reads,
        cold_stats.cache_misses,
        warm_stats.logical_reads,
        warm_stats.cache_misses
    );
    println!(
        "\n(logical reads — the paper's Page Access metric — are identical; \
         only the physical misses disappear once the buffer pool is warm)"
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
