//! Matrix-factorization recommendation — the paper's headline application
//! (Section I): item vectors and user vectors share a latent space, the
//! inner product scores a user's interest, and top-k recommendation is a
//! c-k-AMIP query per user.
//!
//! Run with: `cargo run --release --example recommender`

use promips::core::{ProMips, ProMipsConfig};
use promips::data::{exact_topk, DatasetSpec};
use promips::linalg::Matrix;
use promips::stats::Xoshiro256pp;

const TOP_K: usize = 10;
const USERS: usize = 20;

fn main() {
    // Item catalogue: Netflix-like latent factors (17,770 items × 300 dims).
    let spec = DatasetSpec::netflix().with_n(17_770);
    println!(
        "generating {} items ({} dims, PureSVD-style factors) …",
        spec.n, spec.d
    );
    let catalogue = spec.generate();
    let items: &Matrix = &catalogue.data;

    // User vectors live in the same latent space; reuse held-out rows.
    let users = &catalogue.queries;

    println!("building ProMIPS index (c = 0.9, p = 0.5) …");
    let config = ProMipsConfig::builder().c(0.9).p(0.5).seed(2024).build();
    let index = ProMips::build_in_memory(items, config).expect("build");
    println!(
        "  m = {}, index = {:.1} MB, build = {:.0} ms\n",
        index.m(),
        index.index_size_bytes() as f64 / 1048576.0,
        index.build_timings().total_ms()
    );

    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let mut sum_ratio = 0.0;
    let mut sum_recall = 0.0;
    let mut sum_pages = 0.0;
    for u in 0..USERS {
        let user = users.row(rng.below(users.rows() as u64) as usize);
        index.reset_stats();
        let recs = index.search(user, TOP_K).expect("search");
        let pages = index.access_stats().logical_reads;
        let exact = exact_topk(items, user, TOP_K);

        let ratio: f64 = recs
            .items
            .iter()
            .zip(&exact)
            .filter(|(_, e)| e.1 > 0.0)
            .map(|(r, e)| (r.ip / e.1).min(1.0))
            .sum::<f64>()
            / TOP_K as f64;
        let exact_ids: std::collections::HashSet<u64> = exact.iter().map(|&(id, _)| id).collect();
        let hits = recs
            .items
            .iter()
            .filter(|i| exact_ids.contains(&i.id))
            .count();

        if u < 3 {
            println!(
                "user {u}: top-3 recommended items {:?} (ratio {:.3}, recall {:.1}/{}, {} pages)",
                recs.ids().iter().take(3).collect::<Vec<_>>(),
                ratio,
                hits,
                TOP_K,
                pages
            );
        }
        sum_ratio += ratio;
        sum_recall += hits as f64 / TOP_K as f64;
        sum_pages += pages as f64;
    }

    println!(
        "\nover {USERS} users: mean overall ratio = {:.4}, mean recall = {:.3}, \
         mean page accesses = {:.1}",
        sum_ratio / USERS as f64,
        sum_recall / USERS as f64,
        sum_pages / USERS as f64
    );
    println!(
        "(every recommendation list is c-AMIP-guaranteed: each item's score is \
         ≥ 0.9 × the rank-equivalent exact score with probability ≥ 0.5)"
    );
}
