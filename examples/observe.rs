//! The unified observability layer on a sharded workload: the global
//! metrics registry, per-query stage traces, and the slow-query log.
//!
//! ```sh
//! cargo run --release --example observe
//! ```

use promips::linalg::Matrix;
use promips::obs::{self, slow};
use promips::shard::{ShardedConfig, ShardedProMips, ShardedScratch, SyncPolicy};
use promips::stats::Xoshiro256pp;

fn main() -> std::io::Result<()> {
    let d = 32;
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let data = Matrix::from_rows(
        d,
        (0..6000).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );

    let dir = std::env::temp_dir().join("promips-observe-example");
    let _ = std::fs::remove_dir_all(&dir);

    // A durable 3-shard index: queries, mutations and compaction all feed
    // the same process-global registry.
    let config = ShardedConfig::builder()
        .shards(3)
        .wal_sync(SyncPolicy::EveryN(32))
        .build();
    let index = ShardedProMips::build_in_dir(&data, config, &dir)?;
    let scratch = ShardedScratch::for_index(&index);

    // Keep the 8 slowest traces, whatever their latency.
    slow::configure(0, 8);

    // A mixed workload: inserts, deletes, queries, one compaction pass.
    for _ in 0..300 {
        let v: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        index.insert(&v)?;
    }
    for gid in (0..600).step_by(4) {
        index.delete(gid)?;
    }
    let queries: Vec<Vec<f32>> = (0..32)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect();
    for q in &queries {
        index.search_threaded(q, 10, 1, &scratch)?;
    }
    index.compact_all()?;

    // Per-query stage trace: where did this one search spend its time?
    let (res, trace) = index.search_traced_threaded(&queries[0], 10, 1, &scratch)?;
    println!("--- one traced query (top ip {:.3}) ---", res.items[0].ip);
    print!("{}", trace.render());

    // The slow-query log retains the worst traces seen so far.
    let worst = slow::snapshot();
    println!(
        "\n--- slow-query log ({} kept, worst first) ---",
        worst.len()
    );
    for t in worst.iter().take(3) {
        println!(
            "  {:>7} us  k={}  searched {}/{} shards",
            t.total_ns / 1_000,
            t.k,
            t.shards_searched(),
            t.shards.len()
        );
    }

    // The registry snapshot renders to Prometheus text format...
    let snap = obs::global().snapshot();
    println!("\n--- prometheus exposition (excerpt) ---");
    for line in snap
        .render_prometheus()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            [
                "queries_total",
                "query_latency_ns",
                "wal_appends",
                "compactions",
                "delta_rows",
            ]
            .iter()
            .any(|k| l.contains(k))
        })
    {
        println!("{line}");
    }

    // ...and to JSON for programmatic scraping.
    let json = snap.render_json();
    println!("\n--- json view: {} bytes ---", json.len());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
