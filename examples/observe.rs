//! The observability stack on a sharded workload: the global metrics
//! registry, windowed rates and quantiles fed by a background
//! aggregator, sampled query traces, the slow-query log, the flight
//! recorder, and the SLO health report.
//!
//! ```sh
//! cargo run --release --example observe
//! ```
//!
//! CI runs this example and it self-checks: both Prometheus exposition
//! styles are piped through the in-repo format checker
//! ([`promips::obs::promcheck`]) and the process exits non-zero if
//! either fails.

use std::time::Duration;

use promips::linalg::Matrix;
use promips::obs::{self, health, recorder, sampling, slow, window, HistogramStyle};
use promips::shard::{ShardedConfig, ShardedProMips, ShardedScratch, SyncPolicy};
use promips::stats::Xoshiro256pp;

fn main() -> std::io::Result<()> {
    let d = 32;
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let data = Matrix::from_rows(
        d,
        (0..6000).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );

    let dir = std::env::temp_dir().join("promips-observe-example");
    let _ = std::fs::remove_dir_all(&dir);

    // A durable 3-shard index: queries, mutations and compaction all feed
    // the same process-global registry.
    let config = ShardedConfig::builder()
        .shards(3)
        .wal_sync(SyncPolicy::EveryN(32))
        .build();
    let index = ShardedProMips::build_in_dir(&data, config, &dir)?;
    let scratch = ShardedScratch::for_index(&index);

    // Keep the 8 slowest traces, whatever their latency; sample 1 in 4
    // ordinary searches through the trace machinery so the slow log and
    // exemplars fill even without explicit tracing.
    slow::configure(0, 8);
    sampling::set_sample_every(4);

    // A background aggregator turns the cumulative registry into
    // per-interval deltas for windowed rates and quantiles.
    let aggregator = window::start_global_aggregator(Duration::from_millis(25))?;

    // A mixed workload: inserts, deletes, queries, one compaction pass.
    for _ in 0..300 {
        let v: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        index.insert(&v)?;
    }
    for gid in (0..600).step_by(4) {
        index.delete(gid)?;
    }
    let queries: Vec<Vec<f32>> = (0..32)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect();
    for q in &queries {
        index.search_threaded(q, 10, 1, &scratch)?;
    }
    index.compact_all()?;

    // Let the aggregator capture the workload in at least one interval,
    // then stop it (final tick included).
    std::thread::sleep(Duration::from_millis(60));
    aggregator.stop();

    // Per-query stage trace: where did this one search spend its time?
    let (res, trace) = index.search_traced_threaded(&queries[0], 10, 1, &scratch)?;
    println!("--- one traced query (top ip {:.3}) ---", res.items[0].ip);
    print!("{}", trace.render());

    // The slow-query log retains the worst entries seen so far, each
    // carrying its trace, lifecycle verdict, and flight-recorder excerpt.
    let worst = slow::snapshot();
    println!(
        "\n--- slow-query log ({} kept, worst first) ---",
        worst.len()
    );
    for t in worst.iter().take(3) {
        println!(
            "  {:>7} us  k={}  searched {}/{} shards{}{}",
            t.total_ns() / 1_000,
            t.trace.k,
            t.trace.shards_searched(),
            t.trace.shards.len(),
            if t.sampled { "  [sampled]" } else { "" },
            if t.degraded { "  [DEGRADED]" } else { "" },
        );
    }

    // Windowed view: per-second rates and sliding quantiles over the
    // last second of intervals.
    let w = window::MetricsWindow::global().window(window::HORIZON_1S);
    println!(
        "\n--- windowed metrics ({} intervals, {:.0} ms) ---",
        w.intervals,
        w.elapsed_ns as f64 / 1e6
    );
    println!(
        "  queries/s   {:8.1}",
        w.rate_per_sec(obs::CounterId::Queries)
    );
    println!(
        "  inserts/s   {:8.1}",
        w.rate_per_sec(obs::CounterId::Inserts)
    );
    println!(
        "  p99 latency {:8.1} us",
        w.quantile(obs::HistoId::QueryLatencyNs, 0.99) / 1e3
    );

    // SLO health over the windowed view.
    let report = health::SloPolicy::default().evaluate_with_generation_age(
        &window::MetricsWindow::global().window(window::HORIZON_10S),
        index.max_generation_age_ns(),
    );
    println!("\n--- health report ---");
    print!("{}", report.render());

    // The flight recorder holds the maintenance/lifecycle trail.
    println!(
        "\n--- flight recorder ({} events) ---",
        recorder::dump().len()
    );
    for line in recorder::render_dump().lines().take(8) {
        println!("{line}");
    }

    // Both Prometheus exposition styles must pass the in-repo format
    // checker: TYPE<->sample agreement, label escaping, cumulative
    // buckets ending in +Inf. CI runs this example for exactly this.
    let snap = obs::global().snapshot();
    for style in [HistogramStyle::Summary, HistogramStyle::CumulativeBuckets] {
        let text = snap.render_prometheus_style(style);
        if let Err(errors) = obs::promcheck::check_exposition(&text) {
            eprintln!("exposition ({style:?}) failed format check:");
            for e in errors {
                eprintln!("  {e}");
            }
            std::process::exit(1);
        }
    }
    if let Err(errors) = obs::promcheck::check_exposition(&report.render_prometheus()) {
        eprintln!("health exposition failed format check: {errors:?}");
        std::process::exit(1);
    }
    println!("\n--- prometheus exposition: both styles pass promcheck ---");
    for line in snap
        .render_prometheus_style(HistogramStyle::CumulativeBuckets)
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            [
                "queries_total",
                "query_latency_ns_bucket",
                "wal_appends",
                "compactions",
                "delta_rows",
            ]
            .iter()
            .any(|k| l.contains(k))
        })
        .take(16)
    {
        println!("{line}");
    }

    // ...and to JSON for programmatic scraping.
    let json = snap.render_json();
    println!("\n--- json view: {} bytes ---", json.len());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
