//! Quickstart: build a ProMIPS index over random vectors and answer a
//! c-approximate maximum inner product query with a probability guarantee.
//!
//! Run with: `cargo run --release --example quickstart`

use promips::core::{ProMips, ProMipsConfig};
use promips::linalg::{dot, Matrix};
use promips::stats::Xoshiro256pp;

fn main() {
    // 1. Some data: 5,000 points in 64 dimensions.
    let (n, d) = (5_000usize, 64usize);
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let data = Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );

    // 2. Build the index. c = 0.9 means every returned point's inner
    //    product is within 10% of the true maximum, with probability at
    //    least p = 0.5 (both are tunable; the paper's defaults).
    let config = ProMipsConfig::builder().c(0.9).p(0.5).seed(7).build();
    let index = ProMips::build_in_memory(&data, config).expect("build failed");
    println!(
        "built ProMIPS over {n} points: projected dimension m = {}, \
         index size = {:.2} MB, build time = {:.1} ms",
        index.m(),
        index.index_size_bytes() as f64 / 1048576.0,
        index.build_timings().total_ms(),
    );

    // 3. Search: top-10 c-AMIP points for a fresh query.
    let query: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
    index.reset_stats();
    let result = index.search(&query, 10).expect("search failed");

    println!("\ntop-10 (approximate, probability-guaranteed):");
    for (rank, item) in result.items.iter().enumerate() {
        println!("  #{:<2} id {:<6} ip {:+.4}", rank + 1, item.id, item.ip);
    }
    println!(
        "\nverified {} candidates, terminated by {:?}, page accesses = {}",
        result.verified,
        result.termination,
        index.access_stats().logical_reads,
    );

    // 4. Compare against the exact answer.
    let exact = (0..n)
        .map(|i| (i, dot(data.row(i), &query)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let got = result.items[0].ip;
    println!(
        "\nexact MIP: id {} ip {:+.4}  →  overall ratio (top-1) = {:.4}",
        exact.0,
        exact.1,
        got / exact.1
    );
    assert!(
        got >= 0.9 * exact.1 || got >= exact.1,
        "c-bound violated on this query"
    );
    println!("c-bound (0.9) satisfied ✓");
}
