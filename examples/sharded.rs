//! Sharded ProMIPS: build a norm-range sharded index, fan a query out
//! across shards with Cauchy–Schwarz pruning, and compare recall against
//! the single-index path.
//!
//! Run with: `cargo run --release --example sharded`

use promips::core::{ProMips, ProMipsConfig};
use promips::data::exact_topk;
use promips::shard::{ShardedConfig, ShardedProMips};
use promips::stats::Xoshiro256pp;

fn recall(got: &[u64], truth: &[u64]) -> f64 {
    got.iter().filter(|id| truth.contains(id)).count() as f64 / truth.len() as f64
}

fn main() {
    let (n, d, k, n_queries) = (20_000usize, 64usize, 10usize, 50usize);
    // Norm-skewed rows (log-uniform scales), the regime real MIPS embedding
    // tables live in — and the one where norm-range sharding and pruning
    // pay off.
    let data = promips::data::gen::norm_skewed(n, d, 42);
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect();

    // 1. The single-index baseline.
    let base = ProMipsConfig::builder().c(0.9).p(0.5).seed(3).build();
    let single = ProMips::build_in_memory(&data, base.clone()).expect("single build");
    println!(
        "single index : {n} points, m = {}, build {:.0} ms",
        single.m(),
        single.build_timings().total_ms()
    );

    // 2. The sharded index: 4 norm-range shards, each with its own pager,
    //    storage file layout and ProMIPS index; small shards would fall
    //    back to an exact scan (none do at this size).
    let cfg = ShardedConfig::builder().shards(4).base(base).build();
    let sharded = ShardedProMips::build_in_memory(&data, cfg).expect("sharded build");
    println!(
        "sharded index: {} shards with {:?} points, partitioner = {}",
        sharded.shard_count(),
        sharded.shard_points(),
        sharded.partitioner_name()
    );

    // 3. Fan-out search vs single-index search, recall measured against
    //    the exact answer.
    let mut recall_single = 0.0;
    let mut recall_sharded = 0.0;
    let mut pruned_total = 0usize;
    for q in &queries {
        let truth_ids: Vec<u64> = exact_topk(&data, q, k)
            .into_iter()
            .map(|(id, _)| id)
            .collect();

        recall_single += recall(&single.search(q, k).expect("search").ids(), &truth_ids);
        let res = sharded.search(q, k).expect("sharded search");
        recall_sharded += recall(&res.ids(), &truth_ids);
        pruned_total += res.shards_pruned();
    }
    println!(
        "\nrecall@{k} over {n_queries} queries: single = {:.3}, sharded = {:.3}",
        recall_single / n_queries as f64,
        recall_sharded / n_queries as f64
    );
    println!(
        "shards pruned by the norm bound: {pruned_total} of {} shard-visits avoided",
        n_queries * (sharded.shard_count() - 1)
    );

    // 4. Per-shard anatomy of one query.
    let res = sharded.search(&queries[0], k).expect("sharded search");
    println!(
        "\nquery 0 anatomy (verified = {} candidates):",
        res.verified
    );
    for s in &res.per_shard {
        println!(
            "  shard {} [{} pts, {}]: {}, verified {:3}, contributed {} items",
            s.shard,
            s.points,
            if s.exact { "exact-scan" } else { "indexed" },
            if s.pruned { "pruned " } else { "searched" },
            s.verified,
            s.returned
        );
    }
}
