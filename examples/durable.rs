//! Durable mutations on a sharded index: WAL-backed inserts/deletes,
//! crash recovery by replay, and policy-driven compaction.
//!
//! ```sh
//! cargo run --release --example durable
//! ```

use promips::linalg::Matrix;
use promips::shard::{CompactionPolicy, ShardedConfig, ShardedProMips, SyncPolicy};
use promips::stats::Xoshiro256pp;

fn main() -> std::io::Result<()> {
    let d = 32;
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let data = Matrix::from_rows(
        d,
        (0..4000).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );

    let dir = std::env::temp_dir().join("promips-durable-example");
    let _ = std::fs::remove_dir_all(&dir);

    // Build straight into the directory: per-shard data files + manifest.
    // Mutations group-commit their WAL fsyncs in batches of 64.
    let config = ShardedConfig::builder()
        .shards(4)
        .wal_sync(SyncPolicy::EveryN(64))
        .compaction(CompactionPolicy {
            max_delta_fraction: 0.10,
            ..Default::default()
        })
        .build();
    let index = ShardedProMips::build_in_dir(&data, config, &dir)?;
    println!(
        "built {} points across {} shards in {}",
        index.len(),
        index.shard_count(),
        dir.display()
    );

    // A write burst: inserts route to shards by norm range, deletes by id.
    let mut inserted = Vec::new();
    for _ in 0..600 {
        let v: Vec<f32> = (0..d).map(|_| (rng.normal() * 2.0) as f32).collect();
        inserted.push(index.insert(&v)?);
    }
    for gid in (0..1200).step_by(3) {
        index.delete(gid)?;
    }
    index.sync_wal()?; // flush the group-commit tail before "acknowledging"

    let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
    let res = index.search(&q, 10)?;
    println!(
        "\nafter mutations: {} live points, top ip {:.3}",
        index.len(),
        res.items[0].ip
    );
    for st in index.maintenance_stats() {
        println!(
            "  shard {}: live {:5}  delta {:4}  tombstones {:4}  wal {:6} B  gen {}",
            st.shard, st.live, st.delta_len, st.tombstones, st.wal_bytes, st.generation
        );
    }

    // Simulate a crash: drop without any shutdown ritual, reopen, and the
    // WAL replay restores every acknowledged mutation.
    drop(index);
    let index = ShardedProMips::open(&dir)?;
    println!("\nreopened: {} live points (WAL replayed)", index.len());
    assert!(index.contains(*inserted.last().unwrap()));

    // Fold the delta into fresh shard generations (atomic manifest swap,
    // WALs truncated only after it lands).
    let report = index.compact()?;
    println!(
        "compacted shards {:?} (repartitioned: {})",
        report.compacted, report.repartitioned
    );
    for st in index.maintenance_stats() {
        println!(
            "  shard {}: live {:5}  delta {:4}  tombstones {:4}  wal {:6} B  gen {}",
            st.shard, st.live, st.delta_len, st.tombstones, st.wal_bytes, st.generation
        );
    }
    let after = index.search(&q, 10)?;
    println!("top ip after compaction: {:.3}", after.items[0].ip);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
