//! Multi-class label prediction — the paper's second motivating
//! application (Dean et al., CVPR 2013): with tens of thousands of one-vs-
//! all classifiers `w_ℓ`, predicting the top labels of a feature vector `x`
//! is exactly a top-k MIP query `argmax_ℓ ⟨w_ℓ, x⟩`.
//!
//! Run with: `cargo run --release --example multilabel`

use promips::core::{ProMips, ProMipsConfig};
use promips::data::exact_topk;
use promips::linalg::Matrix;
use promips::stats::Xoshiro256pp;

const NUM_LABELS: usize = 8_000;
const FEATURE_DIM: usize = 256;
const TOP_K: usize = 5;
const TEST_POINTS: usize = 25;

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(99);

    // Classifier bank: each label's weight vector points at its class
    // prototype with some noise (a caricature of trained one-vs-all SVMs).
    println!("generating {NUM_LABELS} classifier weight vectors ({FEATURE_DIM} dims) …");
    let prototypes: Vec<Vec<f32>> = (0..NUM_LABELS)
        .map(|_| (0..FEATURE_DIM).map(|_| rng.normal() as f32).collect())
        .collect();
    let classifiers = Matrix::from_rows(
        FEATURE_DIM,
        prototypes.iter().map(|p| {
            p.iter()
                .map(|&v| v + 0.1 * rng.normal() as f32)
                .collect::<Vec<f32>>()
        }),
    );

    println!("indexing the classifier bank with ProMIPS …");
    let config = ProMipsConfig::builder().c(0.9).p(0.7).seed(3).build();
    let index = ProMips::build_in_memory(&classifiers, config).expect("build");
    println!(
        "  m = {}, build = {:.0} ms\n",
        index.m(),
        index.build_timings().total_ms()
    );

    // Test features: noisy versions of random prototypes — the "true" label
    // should rank highly.
    let mut top1_hits = 0;
    let mut topk_hits = 0;
    for t in 0..TEST_POINTS {
        let true_label = rng.below(NUM_LABELS as u64) as usize;
        let feature: Vec<f32> = prototypes[true_label]
            .iter()
            .map(|&v| v + 0.3 * rng.normal() as f32)
            .collect();

        let predicted = index.search(&feature, TOP_K).expect("search");
        let exact = exact_topk(&classifiers, &feature, TOP_K);

        // How often does the approximate top-k agree with the exact top-k
        // on the winning label?
        if predicted.items[0].id == exact[0].0 {
            top1_hits += 1;
        }
        if predicted.ids().contains(&(true_label as u64)) {
            topk_hits += 1;
        }
        if t < 3 {
            println!(
                "test {t}: true label {true_label}, predicted top-{TOP_K} {:?} \
                 (exact winner {})",
                predicted.ids(),
                exact[0].0
            );
        }
    }

    println!(
        "\nagreement with exact argmax: {top1_hits}/{TEST_POINTS}; \
         true label inside approximate top-{TOP_K}: {topk_hits}/{TEST_POINTS}"
    );
    println!(
        "(a linear scan computes {NUM_LABELS} × {FEATURE_DIM} products per \
         prediction; ProMIPS verified a small candidate set instead)"
    );
}
