//! # ProMIPS
//!
//! A complete Rust reproduction of *"ProMIPS: Efficient High-Dimensional
//! c-Approximate Maximum Inner Product Search with a Lightweight Index"*
//! (Song, Gu, Zhang, Yu — ICDE 2021).
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! * [`core`] — the ProMIPS algorithm: 2-stable random projections, the
//!   probability-guaranteed searching conditions, Quick-Probe, and the
//!   end-to-end index.
//! * [`shard`] — horizontal scaling: norm-range partitioned shards, each
//!   with its own storage file and index, searched by a pruned parallel
//!   fan-out; durably writable through per-shard write-ahead logs with
//!   crash-safe compaction and re-partitioning.
//! * [`wal`] — the append-only per-shard write-ahead log (checksummed
//!   records, group commit, torn-tail recovery).
//! * [`idistance`] — the lightweight iDistance index with the paper's ring
//!   partition pattern.
//! * [`btree`], [`storage`] — the disk substrate (single B+-tree over a
//!   paged file with access accounting).
//! * [`obs`] — the unified observability layer: a process-global
//!   lock-free metrics registry (Prometheus/JSON rendering), per-query
//!   stage tracing, and a slow-query log fed by every layer above.
//! * [`baselines`] — H2-ALSH, Norm-Ranging LSH, PQ-based search and the
//!   exact scanner used for ground truth.
//! * [`data`] — synthetic stand-ins for the paper's four datasets.
//! * [`stats`], [`linalg`], [`cluster`] — numeric substrates.
//!
//! ## Quickstart
//!
//! ```
//! use promips::core::{ProMips, ProMipsConfig};
//! use promips::linalg::Matrix;
//!
//! // 1000 random 32-d points.
//! let mut rng = promips::stats::Xoshiro256pp::seed_from_u64(1);
//! let data = Matrix::from_rows(
//!     32,
//!     (0..1000).map(|_| (0..32).map(|_| rng.normal() as f32).collect()),
//! );
//!
//! // Build a ProMIPS index with approximation ratio c = 0.9 and
//! // guarantee probability p = 0.5.
//! let config = ProMipsConfig::builder().c(0.9).p(0.5).seed(7).build();
//! let index = ProMips::build_in_memory(&data, config).unwrap();
//!
//! // Top-10 c-approximate maximum inner product search.
//! let query: Vec<f32> = (0..32).map(|_| rng.normal() as f32).collect();
//! let result = index.search(&query, 10).unwrap();
//! assert_eq!(result.items.len(), 10);
//! ```
//!
//! ## Scaling out
//!
//! ```
//! use promips::shard::{ShardedConfig, ShardedProMips};
//! # use promips::linalg::Matrix;
//! # let mut rng = promips::stats::Xoshiro256pp::seed_from_u64(1);
//! # let data = Matrix::from_rows(
//! #     32,
//! #     (0..1000).map(|_| (0..32).map(|_| rng.normal() as f32).collect()),
//! # );
//!
//! // Four norm-range shards, each with its own storage + index; queries
//! // fan out in parallel and low-norm shards are pruned by an exact
//! // Cauchy–Schwarz bound.
//! let config = ShardedConfig::builder().shards(4).build();
//! let sharded = ShardedProMips::build_in_memory(&data, config).unwrap();
//! let query: Vec<f32> = (0..32).map(|_| rng.normal() as f32).collect();
//! let top10 = sharded.search(&query, 10).unwrap();
//! assert_eq!(top10.per_shard.len(), 4);
//! ```
//!
//! ## Mutating durably
//!
//! ```no_run
//! use promips::shard::{ShardedConfig, ShardedProMips};
//! # use promips::linalg::Matrix;
//! # let mut rng = promips::stats::Xoshiro256pp::seed_from_u64(1);
//! # let data = Matrix::from_rows(
//! #     32,
//! #     (0..1000).map(|_| (0..32).map(|_| rng.normal() as f32).collect()),
//! # );
//!
//! // A directory-backed index logs every mutation to a per-shard WAL
//! // before applying it; reopening replays the log, so nothing
//! // acknowledged is lost on a crash.
//! let config = ShardedConfig::builder().shards(4).build();
//! let index = ShardedProMips::build_in_dir(&data, config, "idx").unwrap();
//! let v: Vec<f32> = (0..32).map(|_| rng.normal() as f32).collect();
//! let gid = index.insert(&v).unwrap(); // searchable immediately, durable
//! index.delete(gid).unwrap();
//! index.compact().unwrap(); // fold deltas per the CompactionPolicy
//! drop(index);
//! let reopened = ShardedProMips::open("idx").unwrap(); // replays the WAL
//! # let _ = reopened;
//! ```

pub use promips_baselines as baselines;
pub use promips_btree as btree;
pub use promips_cluster as cluster;
pub use promips_core as core;
pub use promips_data as data;
pub use promips_idistance as idistance;
pub use promips_linalg as linalg;
pub use promips_obs as obs;
pub use promips_shard as shard;
pub use promips_stats as stats;
pub use promips_storage as storage;
pub use promips_wal as wal;
